"""The HTTP wire protocol of the serving front: framing and status maps.

The network boundary is deliberately **zero-dependency**: requests and
responses are parsed and rendered here over raw ``asyncio`` streams, with
just enough HTTP/1.1 for the serving front — request lines, headers,
``Content-Length`` bodies, chunked transfer encoding for streamed
JSON-lines responses, and keep-alive connections.  Both ends of the wire
(:mod:`repro.server.http` and :mod:`repro.server.client`) share this
module, so a framing rule only ever exists once.

The second half of the module is the **failure vocabulary**: a total
mapping from the library's exception hierarchy onto HTTP status codes and
back.  The serving discipline is the same as everywhere else in the
repository — a job is finished, or the caller holds an error saying it is
not — so every error becomes a structured JSON body plus a status code,
and overload (:class:`~repro.errors.ServerOverloadedError`, HTTP 429, and
server-unavailable :class:`~repro.errors.ServerError`, HTTP 503) carries a
``Retry-After`` hint the client's backoff honours.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import AsyncIterator, Dict, List, Mapping, Optional

from ..errors import (
    BatchSpecError,
    EngineError,
    LineageError,
    RebalanceError,
    ReproError,
    ServerError,
    ServerOverloadedError,
    WireError,
)

__all__ = [
    "HTTP_VERSION",
    "MAX_BODY_BYTES",
    "RETRYABLE_STATUSES",
    "HttpRequest",
    "HttpResponse",
    "read_request",
    "read_response",
    "render_response",
    "render_request",
    "json_response",
    "write_chunk",
    "end_chunks",
    "iter_chunked_lines",
    "status_for_error",
    "payload_for_error",
    "error_from_status",
    "parse_retry_after",
]

HTTP_VERSION = "HTTP/1.1"

#: Hard bound on a request/response body; a counting job is a few hundred
#: bytes of JSON, so anything near this size is a protocol error, not data.
MAX_BODY_BYTES = 16 * 1024 * 1024

#: Header block bound (request line + headers).
MAX_HEADER_BYTES = 64 * 1024

#: Statuses a client may retry after backing off: overload and
#: server-unavailable.  Everything else is the caller's bug or the job's
#: genuine outcome and retrying would not change it.
RETRYABLE_STATUSES = frozenset({429, 503})

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass(frozen=True)
class HttpRequest:
    """One parsed request: method, split target, headers, body bytes.

    Header names are lower-cased at parse time (HTTP headers are
    case-insensitive); ``query`` holds the raw query string (after ``?``)
    and :meth:`query_parameters` splits it on demand.
    """

    method: str
    path: str
    query: str = ""
    headers: Mapping[str, str] = field(default_factory=dict)
    body: bytes = b""

    def query_parameters(self) -> Dict[str, str]:
        """The query string as a flat dict (last value wins).

        >>> HttpRequest("GET", "/history", "limit=3&x=1").query_parameters()
        {'limit': '3', 'x': '1'}
        """
        parameters: Dict[str, str] = {}
        for piece in self.query.split("&"):
            if not piece:
                continue
            key, _, value = piece.partition("=")
            parameters[key] = value
        return parameters

    def json(self) -> object:
        """The body decoded as JSON (:class:`WireError` on junk)."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise WireError(f"request body is not valid JSON: {exc}") from exc


@dataclass(frozen=True)
class HttpResponse:
    """One parsed response: status, headers (lower-cased), body bytes."""

    status: int
    headers: Mapping[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def chunked(self) -> bool:
        """True iff the body arrives chunked (and ``body`` is empty here)."""
        return self.headers.get("transfer-encoding", "").lower() == "chunked"

    def json(self) -> object:
        """The body decoded as JSON (:class:`WireError` on junk)."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise WireError(f"response body is not valid JSON: {exc}") from exc


# --------------------------------------------------------------------- #
# framing: read one request / response off a stream
# --------------------------------------------------------------------- #
async def _read_header_block(reader: "asyncio.StreamReader") -> Optional[bytes]:
    """The raw header block, or ``None`` on a clean EOF before any byte."""
    try:
        return await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # connection closed between requests: normal
        raise WireError(
            f"connection closed mid-header ({len(exc.partial)} bytes read)"
        ) from exc
    except asyncio.LimitOverrunError as exc:
        raise WireError(f"header block exceeds the stream limit: {exc}") from exc


def _parse_headers(lines: List[str]) -> Dict[str, str]:
    headers: Dict[str, str] = {}
    for line in lines:
        if not line:
            continue
        name, separator, value = line.partition(":")
        if not separator:
            raise WireError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    return headers


async def _read_body(
    reader: "asyncio.StreamReader", headers: Mapping[str, str]
) -> bytes:
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError as exc:
        raise WireError(f"bad Content-Length {length_text!r}") from exc
    if length < 0 or length > MAX_BODY_BYTES:
        raise WireError(f"refusing a {length}-byte body (cap {MAX_BODY_BYTES})")
    if length == 0:
        return b""
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise WireError(
            f"connection closed mid-body ({len(exc.partial)}/{length} bytes)"
        ) from exc


async def read_request(reader: "asyncio.StreamReader") -> Optional[HttpRequest]:
    """Parse one request off the stream; ``None`` on clean end-of-stream.

    Anything malformed — a bad request line, a torn header block, a body
    shorter than its ``Content-Length`` — raises :class:`WireError`; the
    server maps that to a 400 and closes the connection.
    """
    block = await _read_header_block(reader)
    if block is None:
        return None
    if len(block) > MAX_HEADER_BYTES:
        raise WireError(f"header block of {len(block)} bytes exceeds the cap")
    lines = block.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise WireError(f"malformed request line {lines[0]!r}")
    method, target, _version = parts
    path, _, query = target.partition("?")
    headers = _parse_headers(lines[1:])
    body = await _read_body(reader, headers)
    return HttpRequest(
        method=method.upper(), path=path, query=query, headers=headers, body=body
    )


async def read_response(reader: "asyncio.StreamReader") -> HttpResponse:
    """Parse one response head (plus body, unless chunked) off the stream.

    For chunked responses the body is left on the stream for
    :func:`iter_chunked_lines`; for everything else the body is read to
    its ``Content-Length`` before returning.
    """
    block = await _read_header_block(reader)
    if block is None:
        raise WireError("connection closed before a response arrived")
    lines = block.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ", 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/"):
        raise WireError(f"malformed status line {lines[0]!r}")
    try:
        status = int(parts[1])
    except ValueError as exc:
        raise WireError(f"malformed status code {parts[1]!r}") from exc
    headers = _parse_headers(lines[1:])
    if headers.get("transfer-encoding", "").lower() == "chunked":
        return HttpResponse(status=status, headers=headers)
    body = await _read_body(reader, headers)
    return HttpResponse(status=status, headers=headers, body=body)


# --------------------------------------------------------------------- #
# framing: render requests / responses / chunks
# --------------------------------------------------------------------- #
def render_request(
    method: str,
    target: str,
    host: str,
    body: bytes = b"",
    headers: Optional[Mapping[str, str]] = None,
) -> bytes:
    """Serialise one client request (keep-alive, explicit length)."""
    lines = [f"{method} {target} {HTTP_VERSION}", f"Host: {host}"]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    if body:
        lines.append("Content-Type: application/json")
    lines.append(f"Content-Length: {len(body)}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def render_response(
    status: int,
    body: bytes = b"",
    headers: Optional[Mapping[str, str]] = None,
    chunked: bool = False,
) -> bytes:
    """Serialise a response head (and body, unless ``chunked``).

    >>> render_response(200, b'{}').splitlines()[0]
    b'HTTP/1.1 200 OK'
    """
    reason = _REASONS.get(status, "Unknown")
    lines = [f"{HTTP_VERSION} {status} {reason}"]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    lines.append("Content-Type: application/json")
    if chunked:
        lines.append("Transfer-Encoding: chunked")
    else:
        lines.append(f"Content-Length: {len(body)}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head if chunked else head + body


def json_response(
    status: int,
    payload: object,
    headers: Optional[Mapping[str, str]] = None,
) -> bytes:
    """A complete JSON response in one buffer."""
    body = json.dumps(payload).encode("utf-8")
    return render_response(status, body, headers=headers)


def write_chunk(writer: "asyncio.StreamWriter", payload: object) -> None:
    """Queue one JSON-lines chunk (one JSON document plus newline)."""
    data = json.dumps(payload).encode("utf-8") + b"\n"
    writer.write(f"{len(data):x}\r\n".encode("latin-1") + data + b"\r\n")


def end_chunks(writer: "asyncio.StreamWriter") -> None:
    """Queue the terminating zero-length chunk."""
    writer.write(b"0\r\n\r\n")


async def iter_chunked_lines(
    reader: "asyncio.StreamReader",
) -> AsyncIterator[object]:
    """Decode a chunked JSON-lines body, one parsed document at a time.

    A connection that dies before the terminating chunk raises
    :class:`WireError` — a truncated stream must look like a failure, not
    like a short result set.
    """
    buffer = b""
    while True:
        try:
            size_line = await reader.readuntil(b"\r\n")
        except asyncio.IncompleteReadError as exc:
            raise WireError("connection closed mid-stream (no final chunk)") from exc
        try:
            size = int(size_line.strip(), 16)
        except ValueError as exc:
            raise WireError(f"malformed chunk size {size_line!r}") from exc
        if size == 0:
            try:
                await reader.readexactly(2)  # trailing CRLF
            except asyncio.IncompleteReadError:
                pass  # the stream ended with the final chunk: fine
            if buffer.strip():
                raise WireError(f"stream ended mid-line: {buffer!r}")
            return
        if size > MAX_BODY_BYTES:
            raise WireError(f"refusing a {size}-byte chunk")
        try:
            data = await reader.readexactly(size + 2)  # chunk + CRLF
        except asyncio.IncompleteReadError as exc:
            raise WireError("connection closed mid-chunk") from exc
        buffer += data[:-2]
        while b"\n" in buffer:
            line, _, buffer = buffer.partition(b"\n")
            if not line.strip():
                continue
            try:
                yield json.loads(line.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise WireError(f"malformed stream line {line!r}: {exc}") from exc


# --------------------------------------------------------------------- #
# the failure vocabulary: exceptions <-> statuses
# --------------------------------------------------------------------- #
def status_for_error(error: BaseException) -> int:
    """The HTTP status an exception maps to (total: anything maps).

    The order follows the exception hierarchy, most specific first:
    overload is 429 (retryable), malformed payloads are 400, a refused
    elastic-sharding operation (conflicting handoff, unknown shard,
    removing the last shard) is 409 (not retryable by blind resend), a
    stopped or misused server is 503 (retryable — it may be mid-restart),
    unknown databases and unresolvable lineage references are 404, every
    other library error is the caller's 400, and anything non-library is
    a 500.

    >>> status_for_error(ServerOverloadedError("queue full"))
    429
    >>> status_for_error(RebalanceError("'emp' is already mid-handoff"))
    409
    >>> status_for_error(EngineError("unknown database 'ghost'"))
    404
    """
    if isinstance(error, ServerOverloadedError):
        return 429
    if isinstance(error, (BatchSpecError, WireError)):
        return 400
    if isinstance(error, RebalanceError):
        return 409
    if isinstance(error, ServerError):
        return 503
    if isinstance(error, (LineageError, EngineError)):
        return 404
    if isinstance(error, ReproError):
        return 400
    return 500


def payload_for_error(error: BaseException) -> Dict[str, object]:
    """The structured JSON body of an error response.

    >>> payload_for_error(EngineError("unknown database 'ghost'"))
    {'error': {'type': 'EngineError', 'message': "unknown database 'ghost'"}}
    """
    return {
        "error": {"type": type(error).__name__, "message": str(error)}
    }


def error_from_status(status: int, payload: object) -> ReproError:
    """Reconstruct a library exception from an error response.

    The inverse of :func:`status_for_error` as far as the hierarchy
    allows: clients get the same exception *types* for the same failures
    whether they drive :class:`~repro.server.AsyncServer` in process or
    over the wire.
    """
    message = "unknown server error"
    if isinstance(payload, Mapping):
        error_section = payload.get("error")
        if isinstance(error_section, Mapping):
            message = str(error_section.get("message", message))
    if status == 429:
        return ServerOverloadedError(message)
    if status == 409:
        return RebalanceError(message)
    if status == 404:
        return EngineError(message)
    if status == 400:
        return BatchSpecError(message)
    if status == 503:
        return ServerError(message)
    return ServerError(f"HTTP {status}: {message}")


def parse_retry_after(headers: Mapping[str, str]) -> Optional[float]:
    """The ``Retry-After`` hint in seconds, if present and sane.

    Both ends of this wire are ours, so fractional seconds are accepted
    alongside the RFC's integer form.

    >>> parse_retry_after({"retry-after": "0.05"})
    0.05
    >>> parse_retry_after({}) is None
    True
    """
    text = headers.get("retry-after")
    if text is None:
        return None
    try:
        value = float(text)
    except ValueError:
        return None
    return value if value >= 0 else None
