"""The async serving layer: sharded, backpressured serving over the engine.

This package is the service-shaped front of the repository (see
``docs/serving.md`` for the full design):

:class:`AsyncServer`
    An asyncio front-end over N :class:`~repro.server.shards.Shard`
    workers.  Each shard is a warm, single-worker process hosting its own
    :class:`~repro.engine.SolverPool`; registered snapshots are partitioned
    across shards by snapshot token, jobs and deltas route to the owning
    shard, and a bounded queue applies explicit backpressure
    (``"wait"`` or ``"reject"``) instead of accumulating an unbounded
    backlog.  Results are bit-identical to a sequential
    :meth:`~repro.engine.SolverPool.run_stream` of the same stream.

:func:`serve_stream`
    The synchronous convenience wrapper: one call, one temporary server,
    one report.

:class:`HttpServer` / :class:`ServeClient`
    The network front and its client: a zero-dependency HTTP/1.1 layer
    (framing in :mod:`repro.server.wire`) over a running ``AsyncServer``.
    Backpressure surfaces as status codes (429 for a rejected job, 503
    for an unavailable server, both with ``Retry-After``), streams are
    chunked JSON-lines with failures reported in band
    (:class:`StreamFailure` on the asyncio side), and the client brings
    retry budgets with exponential backoff plus streaming result
    iterators.

:class:`GreedyRebalancer` / :class:`RebalancePolicy`
    Elastic shard ownership (:mod:`repro.server.rebalance`): the server
    keeps per-shard and per-name load accounting, policies turn an
    immutable :class:`LoadSnapshot` into :class:`Move` proposals, and
    :meth:`AsyncServer.move` executes each one — quiescing the name,
    exporting its live head, warming the destination through the shared
    persistent store — without stalling other names or perturbing the
    bit-identical ordering guarantee.

The CLI surface is ``python -m repro serve`` (job files or stdin
JSON-lines in, JSON-lines results out; ``--http PORT`` serves the HTTP
front instead; ``--rebalance-interval`` turns on background
rebalancing).
"""

from .async_server import (
    BACKPRESSURE_POLICIES,
    AsyncServer,
    StreamFailure,
    serve_stream,
)
from .client import ServeClient
from .http import HttpServer
from .rebalance import (
    GreedyRebalancer,
    LoadSnapshot,
    Move,
    NameLoad,
    RebalancePolicy,
    ShardLoad,
)
from .shards import Shard

__all__ = [
    "AsyncServer",
    "BACKPRESSURE_POLICIES",
    "GreedyRebalancer",
    "HttpServer",
    "LoadSnapshot",
    "Move",
    "NameLoad",
    "RebalancePolicy",
    "ServeClient",
    "Shard",
    "ShardLoad",
    "StreamFailure",
    "serve_stream",
]
