"""The async serving layer: sharded, backpressured serving over the engine.

This package is the service-shaped front of the repository (see
``docs/serving.md`` for the full design):

:class:`AsyncServer`
    An asyncio front-end over N :class:`~repro.server.shards.Shard`
    workers.  Each shard is a warm, single-worker process hosting its own
    :class:`~repro.engine.SolverPool`; registered snapshots are partitioned
    across shards by snapshot token, jobs and deltas route to the owning
    shard, and a bounded queue applies explicit backpressure
    (``"wait"`` or ``"reject"``) instead of accumulating an unbounded
    backlog.  Results are bit-identical to a sequential
    :meth:`~repro.engine.SolverPool.run_stream` of the same stream.

:func:`serve_stream`
    The synchronous convenience wrapper: one call, one temporary server,
    one report.

The CLI surface is ``python -m repro serve`` (job files or stdin
JSON-lines in, JSON-lines results out).
"""

from .async_server import BACKPRESSURE_POLICIES, AsyncServer, serve_stream
from .shards import Shard

__all__ = [
    "AsyncServer",
    "BACKPRESSURE_POLICIES",
    "Shard",
    "serve_stream",
]
