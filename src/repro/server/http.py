"""The HTTP network front: :class:`HttpServer` over :class:`AsyncServer`.

This is the first layer of the system an *external* client can hit: a
zero-dependency ``asyncio`` HTTP/1.1 server (framing in
:mod:`repro.server.wire`) exposing the full serving surface of
:class:`~repro.server.AsyncServer` — counting (including ``as_of`` time
travel), deltas, streamed mixed job stacks, history, checkpoints,
rollback and statistics — while preserving the two disciplines the
in-process server already enforces:

**Backpressure becomes status codes.**  A full queue under the
``"reject"`` policy answers **429 Too Many Requests**, a stopped (or
stopping) server answers **503 Service Unavailable**, and both carry a
``Retry-After`` hint; under the ``"wait"`` policy the handler coroutine
simply suspends in ``dispatch``, so the connection itself is the queue
and flow control reaches all the way back to the client's socket.  A
request is never silently dropped: it is answered with a result, or with
a structured error body saying exactly why not.

**Streams fail in band.**  ``POST /stream`` serves a JSON-lines body of
mixed count/update jobs and streams results back in completion order as
chunked JSON-lines.  A failing element is emitted as an in-band
``{"index": …, "error": …}`` line (via
:meth:`AsyncServer.results` with ``on_error="yield"``) and the remaining
results keep flowing; the stream always terminates with an ``{"end": …}``
summary line, so a client can distinguish "done" from "connection died".

Endpoints (all request/response bodies are JSON):

====== ========================== ==========================================
method path                       meaning
====== ========================== ==========================================
GET    ``/health``                liveness + shard/database counts
GET    ``/stats``                 queue + per-shard counters (+ HTTP front)
GET    ``/databases``             registered names
GET    ``/shards``                routing table + per-shard load snapshot
POST   ``/shards``                admin: ``{"action": "add" | "remove" |
                                  "move" | "rebalance", ...}``
GET    ``/calibration``           conformal calibration + refinement state
POST   ``/calibration``           admin: ``{"action": "refine" |
                                  "observe", ...}``
POST   ``/count``                 one :class:`CountJob` body -> result
POST   ``/update``                one update body -> delta report
POST   ``/stream``                JSON-lines of jobs -> chunked JSON-lines
POST   ``/range``                 one ``as_of_range`` job -> chunked
                                  JSON-lines, one result per version
GET    ``/history/{name}``        recorded lineage (``?limit=N`` trims)
GET    ``/checkpoints/{name}``    known compaction checkpoints
POST   ``/checkpoint/{name}``     cut a checkpoint now
POST   ``/rollback/{name}``       body ``{"to": ref}`` -> new head record
====== ========================== ==========================================

The ``/shards`` admin surface drives elastic sharding over the wire:
``add`` grows the fleet, ``remove`` (body ``{"shard": id}``) drains and
retires a shard, ``move`` (body ``{"name": …, "shard": id}``) hands one
name off, and ``rebalance`` runs one policy round.  A refused operation —
conflicting handoff, unknown shard, removing the last shard — answers
**409 Conflict** (:class:`~repro.errors.RebalanceError` client-side),
which is deliberately *not* retryable-by-resend.  Responses carry the
server's ``routing_version`` so callers can invalidate cached views; no
HTTP consumer may cache a shard assignment across requests.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Set, Tuple

from ..engine.executor import RangeFailure
from ..engine.jobs import CountJob, UpdateJob, UpdateReport
from ..engine.jobfile import parse_stream_item
from ..errors import ReproError, WireError
from .async_server import AsyncServer, StreamFailure
from .wire import HttpRequest
from . import wire

__all__ = ["HttpServer"]

#: The Retry-After hint (seconds) sent with 429/503 responses.  The server
#: cannot know when a slot frees, so this is a pacing hint for the
#: client's backoff, not a promise.
DEFAULT_RETRY_AFTER = 0.05


def _parse_stream_line(line: bytes) -> object:
    """Parse one JSON-lines request line (:class:`WireError` on junk)."""
    try:
        return json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise WireError(f"malformed stream line {line!r}: {exc}") from exc


class HttpServer:
    """Serve an (already running) :class:`AsyncServer` over HTTP.

    The two lifecycles are deliberately separate: the ``AsyncServer`` owns
    shard processes and is usually started first and stopped last, while
    the ``HttpServer`` owns listening sockets and connections.  Requests
    that arrive while the engine side is stopped are answered ``503`` —
    the wire stays polite even when the engine is mid-restart.

    Parameters
    ----------
    server:
        The engine-side server; must be started separately.
    host, port:
        Bind address.  ``port=0`` asks the OS for a free port; the bound
        address is available as :attr:`host`/:attr:`port` after ``start``.
    retry_after:
        The ``Retry-After`` hint (seconds) attached to 429/503 responses.

    Usage::

        server = AsyncServer(shards=4)
        ...register...
        async with server:
            async with HttpServer(server, port=8080) as front:
                await front.serve_forever()   # until cancelled
    """

    def __init__(
        self,
        server: AsyncServer,
        host: str = "127.0.0.1",
        port: int = 0,
        retry_after: float = DEFAULT_RETRY_AFTER,
    ) -> None:
        self._server = server
        self.host = host
        self.port = port
        self.retry_after = retry_after
        self._listener: Optional[asyncio.AbstractServer] = None
        self._connections: Set[asyncio.Task] = set()
        self.requests = 0
        self.rejected = 0  # 429 responses
        self.unavailable = 0  # 503 responses
        self.errors = 0  # 4xx/5xx other than 429/503

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Bind and start accepting connections."""
        if self._listener is not None:
            raise WireError("the HTTP front is already started")
        self._listener = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        address = self._listener.sockets[0].getsockname()
        self.host, self.port = address[0], address[1]

    async def stop(self) -> None:
        """Stop accepting, then close every open connection."""
        if self._listener is None:
            return
        self._listener.close()
        await self._listener.wait_closed()
        self._listener = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._connections.clear()

    async def serve_forever(self) -> None:
        """Block until cancelled (the CLI's ``--http`` mode)."""
        if self._listener is None:
            raise WireError("start the HTTP front before serve_forever")
        await self._listener.serve_forever()

    async def __aenter__(self) -> "HttpServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    # ------------------------------------------------------------------ #
    # connection loop
    # ------------------------------------------------------------------ #
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                try:
                    request = await wire.read_request(reader)
                except WireError as exc:
                    writer.write(
                        wire.json_response(400, wire.payload_for_error(exc))
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                keep_alive = await self._serve_request(request, writer)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass  # client went away or the front is stopping: nothing to save
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    async def _serve_request(
        self, request: HttpRequest, writer: asyncio.StreamWriter
    ) -> bool:
        """Route one request; return whether to keep the connection."""
        self.requests += 1
        try:
            return await self._route(request, writer)
        except ReproError as exc:
            status = wire.status_for_error(exc)
            headers: Dict[str, str] = {}
            if status in wire.RETRYABLE_STATUSES:
                headers["Retry-After"] = f"{self.retry_after:g}"
                if status == 429:
                    self.rejected += 1
                else:
                    self.unavailable += 1
            else:
                self.errors += 1
            writer.write(
                wire.json_response(status, wire.payload_for_error(exc), headers)
            )
            await writer.drain()
            return True
        except (ConnectionError, asyncio.CancelledError):
            raise
        except Exception as exc:  # a bug, but the wire still answers
            self.errors += 1
            writer.write(wire.json_response(500, wire.payload_for_error(exc)))
            await writer.drain()
            return False

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    async def _route(
        self, request: HttpRequest, writer: asyncio.StreamWriter
    ) -> bool:
        segments = [piece for piece in request.path.split("/") if piece]
        route = (request.method, segments[0] if segments else "")
        if len(segments) <= 1:
            if route == ("GET", "health"):
                return await self._respond(writer, self._health())
            if route == ("GET", "stats"):
                return await self._respond(writer, await self._stats())
            if route == ("GET", "databases"):
                payload = {"databases": list(self._server.database_names())}
                return await self._respond(writer, payload)
            if route == ("GET", "shards"):
                return await self._respond(writer, self._shards_view())
            if route == ("POST", "shards"):
                return await self._shards_admin(request, writer)
            if route == ("GET", "calibration"):
                return await self._respond(
                    writer, await self._server.calibration()
                )
            if route == ("POST", "calibration"):
                return await self._calibration_admin(request, writer)
            if route == ("POST", "count"):
                return await self._count(request, writer)
            if route == ("POST", "update"):
                return await self._update(request, writer)
            if route == ("POST", "stream"):
                return await self._stream(request, writer)
            if route == ("POST", "range"):
                return await self._range(request, writer)
        elif len(segments) == 2:
            name = segments[1]
            if route == ("GET", "history"):
                return await self._history(request, writer, name)
            if route == ("GET", "checkpoints"):
                records = await self._server.checkpoints(name)
                payload = {
                    "name": name,
                    "checkpoints": [record.to_json() for record in records],
                }
                return await self._respond(writer, payload)
            if route == ("POST", "checkpoint"):
                record = await self._server.checkpoint(name)
                payload = {
                    "name": name,
                    "checkpoint": None if record is None else record.to_json(),
                }
                return await self._respond(writer, payload)
            if route == ("POST", "rollback"):
                return await self._rollback(request, writer, name)
        known = {
            "health", "stats", "databases", "shards", "count", "update",
            "stream", "range", "history", "checkpoints", "checkpoint",
            "rollback", "calibration",
        }
        if segments and segments[0] in known:
            self.errors += 1
            writer.write(
                wire.json_response(
                    405,
                    {"error": {"type": "MethodNotAllowed",
                               "message": f"{request.method} {request.path}"}},
                )
            )
        else:
            self.errors += 1
            writer.write(
                wire.json_response(
                    404,
                    {"error": {"type": "NotFound",
                               "message": f"no route for {request.path!r}"}},
                )
            )
        await writer.drain()
        return True

    async def _respond(
        self, writer: asyncio.StreamWriter, payload: object, status: int = 200
    ) -> bool:
        writer.write(wire.json_response(status, payload))
        await writer.drain()
        return True

    # ------------------------------------------------------------------ #
    # endpoint bodies
    # ------------------------------------------------------------------ #
    def _health(self) -> Dict[str, object]:
        return {
            "status": "ok",
            "shards": self._server.shard_count,
            "databases": len(self._server.database_names()),
        }

    async def _stats(self) -> Dict[str, object]:
        stats = await self._server.stats()
        stats["http"] = {
            "requests": self.requests,
            "rejected": self.rejected,
            "unavailable": self.unavailable,
            "errors": self.errors,
        }
        return stats

    def _shards_view(self) -> Dict[str, object]:
        """``GET /shards``: the routing table plus the live load snapshot."""
        snapshot = self._server.load_snapshot()
        return {
            "version": self._server.routing_version,
            "imbalance": snapshot.imbalance(),
            "shards": {
                str(load.shard): {
                    "names": list(load.names),
                    "dispatched": load.dispatched,
                    "completed": load.completed,
                    "in_flight": load.in_flight,
                    "queue_depth": load.queue_depth,
                    "busy_time": load.busy_time,
                }
                for load in snapshot.shards
            },
        }

    async def _shards_admin(
        self, request: HttpRequest, writer: asyncio.StreamWriter
    ) -> bool:
        """``POST /shards``: add/remove/move/rebalance, routed by action."""
        payload = request.json()
        if not isinstance(payload, dict):
            raise WireError(
                'shards admin expects a body like {"action": "add"}'
            )
        action = payload.get("action")
        if action == "add":
            shard_id = self._server.add_shard()
            document: Dict[str, object] = {"added": shard_id}
        elif action == "remove":
            shard_id = payload.get("shard")
            if not isinstance(shard_id, int) or isinstance(shard_id, bool):
                raise WireError(
                    f"remove expects an integer 'shard', got {shard_id!r}"
                )
            moved = await self._server.remove_shard(shard_id)
            document = {"removed": shard_id, "moved": list(moved)}
        elif action == "move":
            name = payload.get("name")
            shard_id = payload.get("shard")
            if not isinstance(name, str) or not name:
                raise WireError(f"move expects a 'name', got {name!r}")
            if not isinstance(shard_id, int) or isinstance(shard_id, bool):
                raise WireError(
                    f"move expects an integer 'shard', got {shard_id!r}"
                )
            changed = await self._server.move(name, shard_id)
            document = {"name": name, "shard": shard_id, "moved": changed}
        elif action == "rebalance":
            moves = await self._server.rebalance()
            document = {
                "moves": [
                    {
                        "name": move.name,
                        "from": move.source,
                        "to": move.destination,
                    }
                    for move in moves
                ]
            }
        else:
            raise WireError(
                f"unknown shards action {action!r}; expected one of "
                f"'add', 'remove', 'move', 'rebalance'"
            )
        document["shards"] = self._server.shard_count
        document["version"] = self._server.routing_version
        return await self._respond(writer, document)

    async def _calibration_admin(
        self, request: HttpRequest, writer: asyncio.StreamWriter
    ) -> bool:
        """``POST /calibration``: refine-to-exact drain or calibration batch.

        ``{"action": "refine"}`` (optional integer ``"limit"`` per shard)
        drains queued refine-to-exact continuations;
        ``{"action": "observe", "jobs": [...]}`` runs a held-out batch of
        count-job bodies through :meth:`AsyncServer.calibrate_from`.
        """
        payload = request.json()
        if not isinstance(payload, dict):
            raise WireError(
                'calibration admin expects a body like {"action": "refine"}'
            )
        action = payload.get("action")
        if action == "refine":
            limit = payload.get("limit")
            if limit is not None and (
                not isinstance(limit, int) or isinstance(limit, bool) or limit < 0
            ):
                raise WireError(
                    f"refine expects a non-negative integer 'limit', got {limit!r}"
                )
            document: Dict[str, object] = dict(await self._server.refine(limit))
        elif action == "observe":
            jobs = payload.get("jobs")
            if not isinstance(jobs, list):
                raise WireError(
                    f"observe expects a 'jobs' list of count-job bodies, "
                    f"got {type(jobs).__name__}"
                )
            batch = [CountJob.from_json(body) for body in jobs]
            document = dict(await self._server.calibrate_from(batch))
        else:
            raise WireError(
                f"unknown calibration action {action!r}; expected one of "
                f"'refine', 'observe'"
            )
        return await self._respond(writer, document)

    @staticmethod
    def _payload_and_index(request: HttpRequest) -> Tuple[Dict[str, object], int]:
        payload = request.json()
        if not isinstance(payload, dict):
            raise WireError(
                f"expected a JSON object body, got {type(payload).__name__}"
            )
        index = payload.pop("index", 0)
        if not isinstance(index, int) or isinstance(index, bool) or index < 0:
            raise WireError(f"index must be a non-negative integer, got {index!r}")
        return payload, index

    async def _count(
        self, request: HttpRequest, writer: asyncio.StreamWriter
    ) -> bool:
        payload, index = self._payload_and_index(request)
        job = CountJob.from_json(payload)
        result = await self._server.submit(job, index)
        return await self._respond(writer, result.to_json())

    async def _update(
        self, request: HttpRequest, writer: asyncio.StreamWriter
    ) -> bool:
        payload, index = self._payload_and_index(request)
        job = UpdateJob.from_json(payload)
        report = await self._server.submit(job, index)
        return await self._respond(writer, report.to_json())

    async def _stream(
        self, request: HttpRequest, writer: asyncio.StreamWriter
    ) -> bool:
        """Chunked JSON-lines of results, completion order, errors in band."""
        lines = request.body.split(b"\n")
        items = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            items.append(parse_stream_item(_parse_stream_line(line)))
        writer.write(wire.render_response(200, chunked=True))
        delivered = failures = 0
        async for outcome in self._server.results(items, on_error="yield"):
            if isinstance(outcome, StreamFailure):
                failures += 1
                status = wire.status_for_error(outcome.error)
                line_payload: Dict[str, object] = {
                    "index": outcome.index,
                    "status": status,
                    **wire.payload_for_error(outcome.error),
                }
                if status == 429:
                    self.rejected += 1
                    line_payload["retry_after"] = self.retry_after
            else:
                delivered += 1
                line_payload = outcome.to_json()
                if isinstance(outcome, UpdateReport):
                    line_payload["type"] = "update"
            wire.write_chunk(writer, line_payload)
            await writer.drain()
        wire.write_chunk(
            writer, {"end": {"results": delivered, "failures": failures}}
        )
        wire.end_chunks(writer)
        await writer.drain()
        return True

    async def _range(
        self, request: HttpRequest, writer: asyncio.StreamWriter
    ) -> bool:
        """``POST /range``: one ``as_of_range`` job, chunked results.

        The body is a single count-job document carrying ``as_of_range``
        (plus an optional ``index`` for the first version's stream
        position).  The whole range runs as one unit of shard work
        (:meth:`AsyncServer.run_range`), so backpressure applies to the
        range, not per version: a full queue under the ``"reject"``
        policy answers **429** for the whole request (with
        ``Retry-After``), a stopped server **503** — exactly like
        ``/stream``'s dispatch errors, but before any chunk is written.
        The response streams one chunked JSON line per version in range
        order; a version that fails is reported in band as
        ``{"index": …, "status": …, "error": …}`` and the remaining
        versions still arrive.  The stream terminates with an
        ``{"end": …}`` summary line.
        """
        payload, first_index = self._payload_and_index(request)
        job = CountJob.from_json(payload)
        outcomes = await self._server.run_range(job, first_index)
        writer.write(wire.render_response(200, chunked=True))
        delivered = failures = 0
        for outcome in outcomes:
            if isinstance(outcome, RangeFailure):
                failures += 1
                status = wire.status_for_error(outcome.error)
                line_payload: Dict[str, object] = {
                    "index": outcome.index,
                    "status": status,
                    **wire.payload_for_error(outcome.error),
                }
                if status == 429:
                    self.rejected += 1
                    line_payload["retry_after"] = self.retry_after
            else:
                delivered += 1
                line_payload = outcome.to_json()
            wire.write_chunk(writer, line_payload)
            await writer.drain()
        wire.write_chunk(
            writer, {"end": {"results": delivered, "failures": failures}}
        )
        wire.end_chunks(writer)
        await writer.drain()
        return True

    async def _history(
        self, request: HttpRequest, writer: asyncio.StreamWriter, name: str
    ) -> bool:
        lineage = await self._server.history(name)
        records = list(lineage)
        elided = 0
        limit_text = request.query_parameters().get("limit")
        if limit_text is not None:
            try:
                limit = int(limit_text)
            except ValueError as exc:
                raise WireError(f"limit must be an integer, got {limit_text!r}") from exc
            if limit < 0:
                raise WireError(f"limit must be >= 0, got {limit}")
            if limit:
                elided = max(0, len(records) - limit)
                records = records[-limit:]
        head = lineage.head
        payload = {
            "name": name,
            "records": [record.to_json() for record in records],
            "elided": elided,
            "head": None if head is None else head.digest,
        }
        return await self._respond(writer, payload)

    async def _rollback(
        self, request: HttpRequest, writer: asyncio.StreamWriter, name: str
    ) -> bool:
        payload = request.json()
        if not isinstance(payload, dict) or "to" not in payload:
            raise WireError('rollback expects a body like {"to": <ref>}')
        reference = payload["to"]
        if not isinstance(reference, (str, int)) or isinstance(reference, bool):
            raise WireError(f"rollback ref must be a digest or index, got {reference!r}")
        record = await self._server.rollback(name, reference)
        return await self._respond(writer, {"name": name, "record": record.to_json()})

