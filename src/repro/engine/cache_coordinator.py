"""The cache coordinator: every cache layer of the engine, in one place.

One :class:`CacheCoordinator` owns the engine's derived-state layers and
nothing else — no registry, no history, no job execution:

in-memory (bounded LRU)
    ``query`` (parsed ASTs), ``decomposition`` (block decompositions by
    snapshot token), ``selectors`` (prepared certificates by (token,
    query, answer)), plus the materialised-ancestor cache time travel
    fills;
on disk (content-addressed, GC'd, pinned)
    ``selectors-disk`` and ``decomposition-disk`` mirrors of the two
    expensive layers, the checkpoint snapshot entries
    (:class:`~repro.store.SnapshotStore`), the ``calibration-disk``
    conformal-calibration tables (``*.cal``, see
    :mod:`repro.approx.calibration`), and the snapshot catalog the
    lineage service records history through — all sharing one
    ``persist_dir``.

The coordinator implements read-through/write-through between the memory
and disk layers (with provenance labels so job results can report which
layer actually served them), the selector **migration** walk that keeps
entries warm across deltas, deferred-startup garbage collection, pinning
of live snapshot tokens, and the recomputation counters the warm-restart
guarantees are stated in terms of.

>>> coordinator = CacheCoordinator(max_databases=4, max_queries=8, max_prepared=8)
>>> query, hit = coordinator.query("EXISTS x. R(1, x)", ())
>>> coordinator.query("EXISTS x. R(1, x)", ())[1]  # second parse is a hit
True
>>> sorted(coordinator.cache_stats())
['decomposition', 'query', 'selectors']
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Callable, Dict, Iterable, Optional, Set, Tuple, Union

from ..db.blocks import BlockDecomposition
from ..db.constraints import PrimaryKeySet
from ..db.database import Database
from ..lams.selectors import Selector
from ..query.ast import Query
from ..query.parser import parse_query
from ..query.rewriting import UCQ
from ..approx.calibration import ConformalCalibrator
from ..repairs.counting import PreparedCertificates, prepare_certificates
from ..store import (
    CalibrationDiskCache,
    DecompositionDiskCache,
    SelectorDiskCache,
    SnapshotCatalog,
    SnapshotStore,
    split_byte_budget,
)
from .cache import LRUCache
from .registry import SnapshotToken

__all__ = ["CacheCoordinator"]


def _ucq_relations(ucq: UCQ) -> Set[str]:
    """Every relation an atom of the UCQ may map into."""
    return {
        atom.relation for disjunct in ucq.disjuncts for atom in disjunct.atoms
    }


class CacheCoordinator:
    """Owns the engine's cache layers; see the module docstring."""

    def __init__(
        self,
        max_databases: int = 32,
        max_queries: int = 256,
        max_prepared: int = 1024,
        persist_dir: Optional[Union[str, Path]] = None,
        persist_max_entries: Optional[int] = None,
        persist_max_age: Optional[float] = None,
        persist_max_bytes: Optional[int] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self._decompositions: LRUCache[BlockDecomposition] = LRUCache(max_databases)
        self._queries: LRUCache[Query] = LRUCache(max_queries)
        self._prepared: LRUCache[PreparedCertificates] = LRUCache(max_prepared)
        #: Materialised historical snapshots, keyed by snapshot token.
        self._snapshots: LRUCache[Database] = LRUCache(max_databases)
        #: Conformal calibration tables by (token, method); read-through
        #: to the ``calibration-disk`` layer when persistent.
        self._calibrators: Dict[Tuple[SnapshotToken, str], ConformalCalibrator] = {}
        self._selector_store: Optional[SelectorDiskCache] = None
        self._decomposition_store: Optional[DecompositionDiskCache] = None
        self._snapshot_store: Optional[SnapshotStore] = None
        self._calibration_store: Optional[CalibrationDiskCache] = None
        self._catalog: Optional[SnapshotCatalog] = None
        self._persist_max_bytes = persist_max_bytes
        if persist_dir is not None:
            # Startup GC is deferred (collect_on_init=False) until the
            # first job runs: by then every registered name has pinned its
            # live token, so the startup collection — like every other one
            # — can never evict active state.
            self._selector_store = SelectorDiskCache(
                persist_dir, persist_max_entries, persist_max_age,
                collect_on_init=False, clock=clock,
            )
            self._decomposition_store = DecompositionDiskCache(
                persist_dir, persist_max_entries, persist_max_age,
                collect_on_init=False, clock=clock,
            )
            self._snapshot_store = SnapshotStore(
                persist_dir, persist_max_entries, persist_max_age,
                collect_on_init=False, clock=clock,
            )
            self._calibration_store = CalibrationDiskCache(
                persist_dir, persist_max_entries, persist_max_age,
                collect_on_init=False, clock=clock,
            )
            self._catalog = SnapshotCatalog(persist_dir)
        self._startup_gc_pending = (
            persist_dir is not None
            and (
                persist_max_entries is not None
                or persist_max_age is not None
                or persist_max_bytes is not None
            )
        )
        self.selector_recomputations = 0
        self.decomposition_recomputations = 0
        self.handoffs = 0
        self.handoff_warm_decompositions = 0
        self.handoff_selector_entries = 0
        self.calibration_records = 0
        #: Materialise requests served without a replay because an
        #: identical materialisation was in flight or already completed
        #: (the single-flight path of :meth:`materialised`).
        self.coalesced_materialisations = 0
        self._materialise_lock = threading.Lock()
        self._inflight_snapshots: Dict[SnapshotToken, Dict[str, object]] = {}

    # ------------------------------------------------------------------ #
    # the persistent substrate (shared with the lineage service)
    # ------------------------------------------------------------------ #
    @property
    def catalog(self) -> Optional[SnapshotCatalog]:
        """The snapshot catalog living in the same store, if persistent."""
        return self._catalog

    @property
    def persist_directory(self) -> Optional[Path]:
        """The store directory (worker processes re-open it), or ``None``."""
        if self._selector_store is None:
            return None
        return self._selector_store.directory

    @property
    def has_snapshot_store(self) -> bool:
        """True iff checkpoint snapshots can be persisted."""
        return self._snapshot_store is not None

    # ------------------------------------------------------------------ #
    # the query layer
    # ------------------------------------------------------------------ #
    def query(
        self, text: str, answer_variables: Tuple[str, ...]
    ) -> Tuple[Query, bool]:
        """The parsed AST of a textual query; ``(value, was_hit)``."""
        return self._queries.get_or_compute(
            (text, answer_variables),
            lambda: parse_query(text, answer_variables=list(answer_variables)),
        )

    # ------------------------------------------------------------------ #
    # the decomposition layer
    # ------------------------------------------------------------------ #
    def decomposition(
        self,
        token: SnapshotToken,
        database: Database,
        keys: PrimaryKeySet,
    ) -> Tuple[BlockDecomposition, str]:
        """The snapshot's block decomposition, with provenance.

        The provenance label is ``"memory"`` (LRU hit), ``"disk"``
        (rehydrated from the persistent mirror) or ``"computed"``.
        """
        origin: Dict[str, str] = {}
        value, hit = self._decompositions.get_or_compute(
            token, lambda: self._build_decomposition(token, database, keys, origin)
        )
        return value, ("memory" if hit else origin["source"])

    def _build_decomposition(
        self,
        token: SnapshotToken,
        database: Database,
        keys: PrimaryKeySet,
        origin: Dict[str, str],
    ) -> BlockDecomposition:
        """Load the snapshot's decomposition from disk, or compute and store it."""
        if self._decomposition_store is not None:
            loaded = self._decomposition_store.load(token, database, keys)
            if loaded is not None:
                origin["source"] = "disk"
                return loaded
        origin["source"] = "computed"
        self.decomposition_recomputations += 1
        value = BlockDecomposition(database, keys)
        if self._decomposition_store is not None:
            self._decomposition_store.store(token, value)
        return value

    def put_decomposition(
        self, token: SnapshotToken, decomposition: BlockDecomposition
    ) -> None:
        """Adopt an incrementally-derived decomposition (the delta path).

        Persisted too, so a restart against the *new* snapshot is warm
        without ever rebuilding it.
        """
        self._decompositions.put(token, decomposition)
        if self._decomposition_store is not None:
            self._decomposition_store.store(token, decomposition)

    # ------------------------------------------------------------------ #
    # the selector layer
    # ------------------------------------------------------------------ #
    def prepared(
        self,
        token: SnapshotToken,
        query_text: str,
        answer_variables: Tuple[str, ...],
        answer: Tuple,
        database: Database,
        keys: PrimaryKeySet,
        query: Query,
        decomposition: BlockDecomposition,
    ) -> Tuple[PreparedCertificates, str]:
        """The (token, query, answer) selector preparation, with provenance."""
        origin: Dict[str, str] = {}

        def prepare_with_provenance() -> PreparedCertificates:
            if self._selector_store is not None:
                loaded = self._selector_store.load(
                    token, query_text, answer_variables, answer
                )
                if loaded is not None:
                    origin["source"] = "disk"
                    return loaded
            origin["source"] = "computed"
            self.selector_recomputations += 1
            value = prepare_certificates(
                database, keys, query, answer, decomposition=decomposition
            )
            if self._selector_store is not None:
                self._selector_store.store(
                    token, query_text, answer_variables, answer, value
                )
            return value

        value, hit = self._prepared.get_or_compute(
            (token, query_text, answer_variables, answer), prepare_with_provenance
        )
        return value, ("memory" if hit else origin["source"])

    def migrate_for_delta(
        self,
        old_token: SnapshotToken,
        new_token: SnapshotToken,
        old_decomposition: BlockDecomposition,
        new_decomposition: BlockDecomposition,
        inserted_relations: Set[str],
        deleted_unkeyed_relations: Set[str],
        deleted_keys: Set,
    ) -> Tuple[int, int, int]:
        """Walk the selector cache across a delta; (kept, migrated, dropped).

        Entries of other snapshots are *kept* untouched; entries of the
        old snapshot are *migrated* — remapped to the new decomposition's
        coordinates and re-persisted under the new token — unless the
        delta could actually change their certificates, in which case
        they are *dropped* for recomputation.
        """
        kept = migrated = dropped = 0
        for key, prepared in self._prepared.items():
            if key[0] != old_token:
                kept += 1
                continue
            remapped = self._migrate_prepared(
                prepared,
                old_decomposition,
                new_decomposition,
                inserted_relations,
                deleted_unkeyed_relations,
                deleted_keys,
            )
            self._prepared.discard(key)
            if remapped is None:
                dropped += 1
                continue
            migrated += 1
            new_key = (new_token,) + key[1:]
            self._prepared.put(new_key, remapped)
            if self._selector_store is not None:
                query_text, answer_variables, answer = key[1:]
                self._selector_store.store(
                    new_token, query_text, answer_variables, answer, remapped
                )
        return kept, migrated, dropped

    @staticmethod
    def _migrate_prepared(
        prepared: PreparedCertificates,
        old_decomposition: BlockDecomposition,
        new_decomposition: BlockDecomposition,
        inserted_relations: Set[str],
        deleted_unkeyed_relations: Set[str],
        deleted_keys: Set,
    ) -> Optional[PreparedCertificates]:
        """Remap one selector entry to the new snapshot, or None to drop it.

        Soundness argument: certificates are homomorphisms into facts of the
        UCQ's relations whose image is key-consistent, and their selectors
        pin exactly the image facts of *keyed* relations.  If the delta
        inserts nothing into the UCQ's relations, no new certificate can
        appear; if it deletes nothing from a pinned block nor from an
        un-keyed UCQ relation, no existing certificate can disappear and no
        pinned fact can change its position inside its block.  The only
        thing left to fix up is that block *indices* shift globally when
        blocks are inserted or removed — hence the coordinate remap.
        """
        relations = _ucq_relations(prepared.ucq)
        if inserted_relations & relations:
            return None
        if deleted_unkeyed_relations & relations:
            return None
        pinned_keys = {
            old_decomposition[coordinate].key_value
            for selector in prepared.selectors
            for coordinate, _ in selector.pins
        }
        if pinned_keys & deleted_keys:
            return None

        remap: Dict[int, int] = {}
        for key_value in pinned_keys:
            old_index = old_decomposition.index_for_key(key_value)
            new_index = new_decomposition.index_for_key(key_value)
            if old_index is None or new_index is None:  # pragma: no cover
                return None  # defensive: pinned block vanished unexpectedly
            remap[old_index] = new_index
        remapped_selectors = tuple(
            Selector({remap[index]: element for index, element in selector.pins})
            for selector in prepared.selectors
        )
        return PreparedCertificates(
            prepared.ucq, remapped_selectors, prepared.certificate_count
        )

    # ------------------------------------------------------------------ #
    # the calibration layer
    # ------------------------------------------------------------------ #
    def calibrator(self, token: SnapshotToken, method: str) -> ConformalCalibrator:
        """The (token, method) calibration table, read-through from disk.

        Always returns a calibrator — an empty one when neither memory
        nor the ``calibration-disk`` layer holds observations yet (an
        empty calibrator simply leaves anytime intervals uncalibrated).
        """
        key = (token, method)
        calibrator = self._calibrators.get(key)
        if calibrator is not None:
            return calibrator
        if self._calibration_store is not None:
            payload = self._calibration_store.load(token, method)
            if payload is not None:
                calibrator = ConformalCalibrator.from_payload(payload)
        if calibrator is None:
            calibrator = ConformalCalibrator()
        self._calibrators[key] = calibrator
        return calibrator

    def record_calibration(
        self,
        token: SnapshotToken,
        method: str,
        estimate: float,
        uncertainty: float,
        exact: float,
    ) -> ConformalCalibrator:
        """Add one held-out (estimate, exact) pair and persist the table."""
        calibrator = self.calibrator(token, method)
        calibrator.observe(estimate, uncertainty, exact)
        self.calibration_records += 1
        if self._calibration_store is not None:
            self._calibration_store.store(token, method, calibrator.to_payload())
        return calibrator

    def adopt_calibration(
        self, old_token: SnapshotToken, new_token: SnapshotToken
    ) -> int:
        """Carry calibration tables across a delta; returns tables moved.

        Residual scores are a property of the estimator family on the
        workload, not of one snapshot's exact block structure, so a
        delta-adjacent snapshot inherits them rather than restarting the
        calibration from scratch.  The old token's tables stay stored
        (time-travel queries against the ancestor reuse them) but leave
        the in-memory map.
        """
        moved = 0
        for (token, method), calibrator in list(self._calibrators.items()):
            if token != old_token:
                continue
            del self._calibrators[(token, method)]
            if not len(calibrator):
                continue
            self._calibrators[(new_token, method)] = calibrator
            if self._calibration_store is not None:
                self._calibration_store.store(
                    new_token, method, calibrator.to_payload()
                )
            moved += 1
        return moved

    def calibration_stats(self) -> Dict[str, object]:
        """Tables held in memory, observations per method, disk counters."""
        per_method: Dict[str, int] = {}
        for (_, method), calibrator in self._calibrators.items():
            per_method[method] = per_method.get(method, 0) + len(calibrator)
        stats: Dict[str, object] = {
            "tables": len(self._calibrators),
            "observations": per_method,
            "records": self.calibration_records,
        }
        if self._calibration_store is not None:
            stats["disk"] = self._calibration_store.stats()
        return stats

    # ------------------------------------------------------------------ #
    # materialised ancestors and checkpoint snapshots
    # ------------------------------------------------------------------ #
    def remember_snapshot(self, token: SnapshotToken, database: Database) -> None:
        """Keep a displaced head materialised for near-term time travel."""
        self._snapshots.put(token, database)

    def has_materialised(self, token: SnapshotToken) -> bool:
        """Membership probe for the materialised-ancestor cache (no stats)."""
        return token in self._snapshots

    def materialised(self, token: SnapshotToken, factory) -> Database:
        """The cached materialisation of ``token``, computing on a miss.

        Single-flight: identical ``token`` requests coalesce, so a burst
        of jobs asking for the same ``as_of`` snapshot replays the chain
        once — concurrent callers wait for the leader's replay, and
        callers arriving after it hit the cache.  Either way the avoided
        replay is counted in :attr:`coalesced_materialisations`.
        """
        while True:
            with self._materialise_lock:
                if token in self._snapshots:
                    value, _ = self._snapshots.get_or_compute(token, factory)
                    self.coalesced_materialisations += 1
                    return value
                flight = self._inflight_snapshots.get(token)
                if flight is None:
                    flight = {"done": threading.Event(), "value": None}
                    self._inflight_snapshots[token] = flight
                    break  # this caller leads the replay
            flight["done"].wait()  # type: ignore[union-attr]
            leader_value = flight["value"]
            if leader_value is not None:
                with self._materialise_lock:
                    value, _ = self._snapshots.get_or_compute(
                        token, lambda: leader_value
                    )
                    self.coalesced_materialisations += 1
                return value
            # The leader failed; loop and race to lead the retry.
        try:
            value, _ = self._snapshots.get_or_compute(token, factory)
            flight["value"] = value
            return value
        finally:
            with self._materialise_lock:
                self._inflight_snapshots.pop(token, None)
            flight["done"].set()  # type: ignore[union-attr]

    def store_checkpoint(self, token: SnapshotToken, database: Database) -> bool:
        """Persist a full checkpoint snapshot; False without a store or on I/O."""
        if self._snapshot_store is None:
            return False
        return self._snapshot_store.store(token, database)

    def load_checkpoint(self, token: SnapshotToken) -> Optional[Database]:
        """Load (and digest-verify) a checkpoint snapshot, or ``None``."""
        if self._snapshot_store is None:
            return None
        return self._snapshot_store.load(token)

    def has_checkpoint(self, token: SnapshotToken) -> bool:
        """Cheap existence probe for a checkpoint snapshot entry."""
        if self._snapshot_store is None:
            return False
        return self._snapshot_store.contains(token)

    def drop_checkpoint(self, token: SnapshotToken) -> bool:
        """Delete a checkpoint snapshot entry (demotion); True iff removed."""
        if self._snapshot_store is None:
            return False
        return self._snapshot_store.discard(token)

    def checkpoint_bytes(self, token: SnapshotToken) -> Optional[int]:
        """The stored byte size of one checkpoint entry, or ``None``."""
        if self._snapshot_store is None:
            return None
        return self._snapshot_store.entry_bytes(token)

    # ------------------------------------------------------------------ #
    # warm ownership handoff
    # ------------------------------------------------------------------ #
    def prime_for_handoff(
        self,
        token: SnapshotToken,
        database: Database,
        keys: PrimaryKeySet,
    ) -> Dict[str, object]:
        """Warm this coordinator for a snapshot arriving via handoff.

        The destination side of an elastic-sharding move: the source has
        been serving the snapshot, so on a shared persistent store its
        decomposition (``*.dec``) and selector (``*.sel``) entries are
        already written.  The decomposition is pulled through the normal
        read-through path — a warm store loads it without touching
        ``decomposition_recomputations`` — while selector entries stay
        lazy (their cache keys carry query/answer material the entry
        names do not expose) and are served by the ``selectors-disk``
        read-through on first use, again without recomputation.  Without
        a store the decomposition is computed here, once, and the single
        recomputation is counted like any other cold build.

        Returns what the handoff found: the decomposition's provenance
        (``"memory"``/``"disk"``/``"computed"``) and how many selector
        entries of the token are already waiting on disk.
        """
        self.handoffs += 1
        _, provenance = self.decomposition(token, database, keys)
        if provenance != "computed":
            self.handoff_warm_decompositions += 1
        selector_entries = 0
        if self._selector_store is not None:
            selector_entries = self._selector_store.token_entry_count(token)
            self.handoff_selector_entries += selector_entries
        return {
            "decomposition": provenance,
            "selector_entries": selector_entries,
        }

    # ------------------------------------------------------------------ #
    # invalidation, pinning, garbage collection
    # ------------------------------------------------------------------ #
    def drop_token(self, token: SnapshotToken) -> None:
        """Drop all cached in-memory state derived from one snapshot."""
        self._decompositions.discard(token)
        self._prepared.discard_where(lambda key: key[0] == token)

    def set_pinned_tokens(self, tokens: Iterable[SnapshotToken]) -> None:
        """Pin the live snapshot tokens against disk-cache GC."""
        live = set(tokens)
        for store in self._disk_layers().values():
            store.set_pinned_tokens(live)

    def _disk_layers(self) -> Dict[str, object]:
        layers: Dict[str, object] = {}
        if self._selector_store is not None:
            layers["selectors-disk"] = self._selector_store
        if self._decomposition_store is not None:
            layers["decomposition-disk"] = self._decomposition_store
        if self._snapshot_store is not None:
            layers["snapshots-disk"] = self._snapshot_store
        if self._calibration_store is not None:
            layers["calibration-disk"] = self._calibration_store
        return layers

    def run_startup_gc(self) -> None:
        """Run the deferred startup collection, once, pins in place."""
        if self._startup_gc_pending:
            self.collect_garbage()

    def collect_garbage(
        self,
        max_entries: Optional[int] = None,
        max_age_seconds: Optional[float] = None,
        max_bytes: Optional[int] = None,
    ) -> Dict[str, int]:
        """Run GC on every on-disk layer; per-layer eviction counts.

        Count/age bounds run per layer exactly as before.  A byte budget
        (``max_bytes``, or the ``persist_max_bytes`` configured at
        construction) is **global**: it is split across the entry kinds
        proportional to each kind's observed hit-rate-per-byte (see
        :func:`~repro.store.split_byte_budget`) and each layer then
        evicts, least recently used first, down to its share.  Pinned
        (live-head) entries are never evicted by either pass.
        """
        self._startup_gc_pending = False
        layers = self._disk_layers()
        evictions = {
            layer: store.collect_garbage(max_entries, max_age_seconds)  # type: ignore[attr-defined]
            for layer, store in layers.items()
        }
        budget = max_bytes if max_bytes is not None else self._persist_max_bytes
        if budget is not None:
            for layer, share in self.plan_byte_budget(budget).items():
                evictions[layer] += layers[layer].collect_bytes(  # type: ignore[attr-defined]
                    share["budget"]
                )
        return evictions

    def plan_byte_budget(
        self, max_bytes: Optional[int] = None
    ) -> Dict[str, Dict[str, object]]:
        """How a global byte budget would split across the disk layers.

        Per layer: the current ``bytes``, the decayed ``hit_rate`` and
        the ``budget`` share the layer would be held to.  Purely
        observational — call :meth:`collect_garbage` to act on it.
        """
        budget = max_bytes if max_bytes is not None else self._persist_max_bytes
        layers = self._disk_layers()
        usage = {
            layer: (store.decayed_hit_rate(), store.total_bytes())  # type: ignore[attr-defined]
            for layer, store in layers.items()
        }
        shares = (
            split_byte_budget(budget, usage)
            if budget is not None
            else {layer: size for layer, (_, size) in usage.items()}
        )
        return {
            layer: {
                "bytes": usage[layer][1],
                "hit_rate": usage[layer][0],
                "budget": shares[layer],
            }
            for layer in layers
        }

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def cache_stats(self) -> Dict[str, Dict[str, int]]:
        """Lifetime statistics of every layer, in-memory and on-disk."""
        stats = {
            "query": self._queries.stats(),
            "decomposition": self._decompositions.stats(),
            "selectors": self._prepared.stats(),
        }
        for layer, store in self._disk_layers().items():
            stats[layer] = store.stats()  # type: ignore[attr-defined]
        if self.handoffs:
            # Present only once a handoff happened, so coordinators that
            # never migrate ownership keep their original stats shape.
            stats["handoff"] = {
                "handoffs": self.handoffs,
                "warm_decompositions": self.handoff_warm_decompositions,
                "selector_entries": self.handoff_selector_entries,
            }
        if self.calibration_records or self._calibrators:
            # Same shape-preserving rule as the handoff section.
            stats["calibration"] = self.calibration_stats()
        if self.coalesced_materialisations:
            # Same shape-preserving rule: only coordinators that actually
            # coalesced identical as_of materialisations grow the key.
            stats["coalesced_materialisations"] = (
                self.coalesced_materialisations
            )
        return stats

    def __repr__(self) -> str:
        persistent = self.persist_directory
        return (
            f"CacheCoordinator(queries={len(self._queries)}, "
            f"decompositions={len(self._decompositions)}, "
            f"selectors={len(self._prepared)}, "
            f"persist={str(persistent) if persistent else None})"
        )
