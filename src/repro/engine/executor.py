"""The job executor: running counts and deltas over the engine core.

The top layer of the engine core.  A :class:`JobExecutor` turns the three
state layers below it — the snapshot registry, the cache coordinator and
the lineage service — into answered jobs:

* :meth:`run_job` executes one :class:`~repro.engine.jobs.CountJob`
  against the caches (resolving ``as_of`` references through the lineage
  service, checkpoints included);
* :meth:`apply_delta` derives the next snapshot incrementally, migrates
  the selector cache across it and records the lineage step (consulting
  the pool's checkpoint policy — a fixed interval or an adaptive
  cost-model placement — for an automatic checkpoint);
* :meth:`run` / :meth:`run_stream` schedule batches and interleaved
  count/update streams — contiguous count segments may fan out to a
  primed process pool, updates run in the parent in stream order, and
  results are **bit-identical** to a sequential run either way.

Worker plumbing lives here too: workers are primed once with the
registered databases and the parent's lineage chains (via the pool
initializer, so databases are pickled once per worker, not once per job)
and rebuild their caches locally, sharing only the content-addressed
persistent store.

>>> from repro.db import Database, PrimaryKeySet, fact
>>> from repro.engine.cache_coordinator import CacheCoordinator
>>> from repro.engine.jobs import CountJob
>>> from repro.engine.lineage_service import LineageService
>>> from repro.engine.registry import SnapshotRegistry
>>> registry, caches = SnapshotRegistry(), CacheCoordinator()
>>> lineage = LineageService(registry, caches)
>>> executor = JobExecutor(registry, caches, lineage)
>>> token, _ = registry.register(
...     "hr", Database([fact("R", 1, "a"), fact("R", 1, "b")]),
...     PrimaryKeySet.from_dict({"R": [1]}))
>>> lineage.record_head("hr", token, kind="register")
>>> result = executor.run_job(CountJob(database="hr", query="EXISTS x. R(1, x)"))
>>> (result.satisfying, result.total)
(2, 2)
"""

from __future__ import annotations

import math
import os
import time
from concurrent.futures import Executor, ProcessPoolExecutor
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..core.solver import count_query, count_query_anytime
from ..db.constraints import PrimaryKeySet
from ..db.database import Database
from ..db.delta import Delta
from ..db.facts import Constant
from ..db.lineage import Lineage
from ..errors import EngineError, ReproError
from ..query.ast import Query
from ..query.classify import is_existential_positive
from ..repairs.counting import PreparedCertificates
from .cache_coordinator import CacheCoordinator
from .jobs import (
    BatchReport,
    CountJob,
    JobResult,
    UpdateJob,
    UpdateReport,
    aggregate_cache_stats,
)
from .lineage_service import LineageService
from .registry import SnapshotRegistry, SnapshotToken

__all__ = ["JobExecutor", "RangeFailure"]

#: Key of the refine-to-exact cache: the snapshot token plus everything
#: that identifies the count (the exact answer is method-independent, so
#: ``method`` is deliberately absent — one refinement serves both
#: estimator families).
ExactKey = Tuple[SnapshotToken, str, Tuple[str, ...], Tuple[Constant, ...]]


@dataclass(frozen=True)
class RangeFailure:
    """In-band failure of one version of an expanded range job.

    ``run_range`` answers every version of the range it can and carries
    the versions it cannot (an unmaterialisable ancestor behind a
    compacted record, say) as in-band failures, so one broken version
    never voids the rest of the range.  ``index`` is the version's
    position in the range expansion.
    """

    index: int
    error: Exception


@dataclass(frozen=True)
class _PendingRefinement:
    """One queued refine-to-exact continuation of an anytime job."""

    key: ExactKey
    database: Database
    keys: PrimaryKeySet
    token: SnapshotToken
    job: CountJob
    estimate: float
    raw_half_width: float


class JobExecutor:
    """Executes jobs, deltas and streams over the engine's state layers."""

    def __init__(
        self,
        registry: SnapshotRegistry,
        caches: CacheCoordinator,
        lineage: LineageService,
        workers: Optional[int] = None,
    ) -> None:
        self._registry = registry
        self._caches = caches
        self._lineage = lineage
        self._workers = workers
        #: Exact counts published by completed refine-to-exact
        #: continuations, consulted only for anytime jobs (plain jobs
        #: keep their exact bit-for-bit report shape).
        self._exact_cache: Dict[ExactKey, Tuple[float, int]] = {}
        self._pending_refinements: List[_PendingRefinement] = []
        self._refined = 0

    # ------------------------------------------------------------------ #
    # single-job execution
    # ------------------------------------------------------------------ #
    def run_job(
        self,
        job: CountJob,
        index: int = 0,
        component_executor: Optional[Executor] = None,
        worker_label: str = "sequential",
    ) -> JobResult:
        """Run one job against the caches and return its result.

        ``component_executor`` optionally parallelises the decomposed
        union-of-boxes count across connected components (useful for one
        huge exact job; batches parallelise across jobs instead).  A job
        carrying ``as_of`` runs against the referenced *historical*
        snapshot, materialised through the lineage service (nearest
        checkpoint or head) and served through the ordinary token-keyed
        caches.
        """
        started = time.perf_counter()
        self._caches.run_startup_gc()
        database, keys, token, query, decomposition, prepared, hits, misses = (
            self._resolve_inputs(job)
        )

        if job.is_randomised and job.has_sla:
            exact_key: ExactKey = (
                token,
                job.query,
                job.answer_variables,
                job.answer,
            )
            cached = self._exact_cache.get(exact_key)
            if cached is not None:
                satisfying, total = cached
                hits.append("exact")
                return JobResult(
                    index=index,
                    job=job,
                    satisfying=satisfying,
                    total=total,
                    method=job.method,
                    is_estimate=False,
                    elapsed=time.perf_counter() - started,
                    cache_hits=tuple(hits),
                    cache_misses=tuple(misses),
                    worker=worker_label,
                    interval_low=float(satisfying),
                    interval_high=float(satisfying),
                    samples=0,
                    stop_reason="exact",
                )
            misses.append("exact")
            result, trace = count_query_anytime(
                database,
                keys,
                query,
                answer=job.answer,
                method=job.method,
                epsilon=job.epsilon,
                delta=job.delta,
                rng=job.effective_seed(index),
                decomposition=decomposition,
                prepared=prepared,
                max_latency=job.max_latency,
                max_error=job.max_error,
                calibrator=self._caches.calibrator(token, job.method),
            )
            self._schedule_refinement(
                exact_key, database, keys, token, job, trace
            )
            final = trace.final
            return JobResult(
                index=index,
                job=job,
                satisfying=result.satisfying,
                total=result.total,
                method=result.method,
                is_estimate=result.is_estimate,
                elapsed=time.perf_counter() - started,
                cache_hits=tuple(hits),
                cache_misses=tuple(misses),
                worker=worker_label,
                interval_low=final.lo,
                interval_high=final.hi,
                samples=final.samples,
                stop_reason=trace.stop_reason,
                calibrated=trace.calibrated,
            )

        map_fn = component_executor.map if component_executor is not None else None
        result = count_query(
            database,
            keys,
            query,
            answer=job.answer,
            method=job.method,
            epsilon=job.epsilon,
            delta=job.delta,
            rng=job.effective_seed(index) if job.is_randomised else None,
            decomposition=decomposition,
            prepared=prepared,
            map_fn=map_fn,
        )
        return JobResult(
            index=index,
            job=job,
            satisfying=result.satisfying,
            total=result.total,
            method=result.method,
            is_estimate=result.is_estimate,
            elapsed=time.perf_counter() - started,
            cache_hits=tuple(hits),
            cache_misses=tuple(misses),
            worker=worker_label,
        )

    def _resolve_inputs(
        self, job: CountJob
    ) -> Tuple[
        Database,
        PrimaryKeySet,
        SnapshotToken,
        Query,
        object,
        Optional[PreparedCertificates],
        List[str],
        List[str],
    ]:
        """Resolve a job's snapshot and warm the cache layers it needs."""
        if job.as_of_range is not None:
            raise EngineError(
                "a range job cannot run directly; submit it through "
                "run_range (or run/run_stream, which expand it in place)"
            )
        database, keys = self._registry.lookup(job.database)
        token = self._registry.token(job.database)
        if job.as_of is not None:
            database, keys, token = self._lineage.materialise(job.database, job.as_of)
        hits: List[str] = []
        misses: List[str] = []

        query, query_hit = self._caches.query(job.query, job.answer_variables)
        (hits if query_hit else misses).append("query")

        decomposition, source = self._caches.decomposition(token, database, keys)
        if source == "memory":
            hits.append("decomposition")
        elif source == "disk":
            hits.append("decomposition-disk")
        else:
            misses.append("decomposition")

        prepared: Optional[PreparedCertificates] = None
        if job.method != "naive" and is_existential_positive(query):
            prepared, source = self._caches.prepared(
                token,
                job.query,
                job.answer_variables,
                job.answer,
                database,
                keys,
                query,
                decomposition,
            )
            if source == "memory":
                hits.append("selectors")
            elif source == "disk":
                hits.append("selectors-disk")
            else:
                misses.append("selectors")
        return database, keys, token, query, decomposition, prepared, hits, misses

    # ------------------------------------------------------------------ #
    # refine-to-exact continuations and calibration
    # ------------------------------------------------------------------ #
    def _schedule_refinement(
        self,
        key: ExactKey,
        database: Database,
        keys: PrimaryKeySet,
        token: SnapshotToken,
        job: CountJob,
        trace,
    ) -> None:
        """Queue a background refine-to-exact continuation for ``key``.

        The continuation is deduplicated per key: one exact count serves
        every later anytime job on the same snapshot/query, whichever
        estimator asked first.
        """
        if key in self._exact_cache:
            return
        if any(pending.key == key for pending in self._pending_refinements):
            return
        self._pending_refinements.append(
            _PendingRefinement(
                key=key,
                database=database,
                keys=keys,
                token=token,
                job=job,
                estimate=trace.estimate,
                raw_half_width=trace.raw_half_width,
            )
        )

    @property
    def pending_refinements(self) -> int:
        """Number of queued refine-to-exact continuations."""
        return len(self._pending_refinements)

    @property
    def refinements_completed(self) -> int:
        """Number of refine-to-exact continuations run so far."""
        return self._refined

    def drain_refinements(self, limit: Optional[int] = None) -> int:
        """Run queued refine-to-exact continuations (all, or up to ``limit``).

        Each continuation computes the exact count for its snapshot/query,
        publishes it in the lineage-keyed exact cache (so later anytime
        jobs are answered exactly with zero sampling) and feeds the
        (estimate, uncertainty, exact) triple to the conformal calibrator
        of its ``(token, method)`` pair.  Returns the number of
        continuations actually computed.
        """
        if limit is not None and limit < 0:
            raise EngineError(f"limit must be >= 0, got {limit}")
        drained = 0
        while self._pending_refinements and (limit is None or drained < limit):
            pending = self._pending_refinements.pop(0)
            if pending.key in self._exact_cache:
                continue
            query, _ = self._caches.query(
                pending.job.query, pending.job.answer_variables
            )
            decomposition, _ = self._caches.decomposition(
                pending.token, pending.database, pending.keys
            )
            prepared: Optional[PreparedCertificates] = None
            if is_existential_positive(query):
                prepared, _ = self._caches.prepared(
                    pending.token,
                    pending.job.query,
                    pending.job.answer_variables,
                    pending.job.answer,
                    pending.database,
                    pending.keys,
                    query,
                    decomposition,
                )
            exact = count_query(
                pending.database,
                pending.keys,
                query,
                answer=pending.job.answer,
                method="auto",
                decomposition=decomposition,
                prepared=prepared,
            )
            self._exact_cache[pending.key] = (exact.satisfying, exact.total)
            raw = pending.raw_half_width
            if math.isfinite(raw) and raw > 0.0:
                self._caches.record_calibration(
                    pending.token,
                    pending.job.method,
                    pending.estimate,
                    raw,
                    float(exact.satisfying),
                )
            self._refined += 1
            drained += 1
        return drained

    def calibrate_from(self, jobs: Iterable[CountJob]) -> Dict[str, int]:
        """Hold out (estimate, exact) pairs from ``jobs`` for calibration.

        Every randomised job is run twice against its snapshot — once
        through the full-budget sampling plan and once exactly — and the
        (estimate, raw half-width, exact) triple is recorded with the
        conformal calibrator of its ``(token, method)`` pair.  Exact jobs
        (and degenerate plans with no usable uncertainty) are skipped.
        Returns ``{"pairs": ..., "skipped": ...}``.
        """
        pairs = 0
        skipped = 0
        for index, job in enumerate(list(jobs)):
            if not job.is_randomised:
                skipped += 1
                continue
            database, keys, token, query, decomposition, prepared, _, _ = (
                self._resolve_inputs(job)
            )
            _, trace = count_query_anytime(
                database,
                keys,
                query,
                answer=job.answer,
                method=job.method,
                epsilon=job.epsilon,
                delta=job.delta,
                rng=job.effective_seed(index),
                decomposition=decomposition,
                prepared=prepared,
            )
            exact = count_query(
                database,
                keys,
                query,
                answer=job.answer,
                method="auto",
                decomposition=decomposition,
                prepared=prepared,
            )
            raw = trace.raw_half_width
            if not math.isfinite(raw) or raw <= 0.0:
                skipped += 1
                continue
            self._caches.record_calibration(
                token, job.method, trace.estimate, raw, float(exact.satisfying)
            )
            pairs += 1
        return {"pairs": pairs, "skipped": skipped}

    # ------------------------------------------------------------------ #
    # incremental updates
    # ------------------------------------------------------------------ #
    def apply_delta(self, name: str, delta: Delta) -> UpdateReport:
        """Update the snapshot of ``name`` in place of a re-registration.

        The database and its block decomposition are updated incrementally
        (cost proportional to the touched blocks, not the database), the
        selector cache is *walked, not dropped* (see
        :meth:`CacheCoordinator.migrate_for_delta`), the effective delta
        is recorded as a lineage step, and the pool's checkpoint policy
        is consulted: ``checkpoint_every`` cuts a compaction checkpoint
        once enough effective deltas have accumulated, an adaptive policy
        may demote decayed checkpoints here (its placement is driven by
        observed ``as_of`` reads).
        """
        started = time.perf_counter()
        self._caches.run_startup_gc()
        database, keys = self._registry.lookup(name)
        old_token = self._registry.token(name)
        old_decomposition, _ = self._caches.decomposition(old_token, database, keys)

        new_database = database.apply_delta(delta)
        new_decomposition = old_decomposition.apply_delta(delta, database=new_database)
        new_token: SnapshotToken = (
            new_database.content_digest(),
            keys.content_digest(),
        )

        really_inserted, really_deleted = delta.effective_against(database)
        inserted_relations = {item.relation for item in really_inserted}
        deleted_unkeyed_relations = {
            item.relation for item in really_deleted if not keys.has_key(item.relation)
        }
        deleted_keys = {keys.key_value(item) for item in really_deleted}
        touched_keys = {
            keys.key_value(item) for item in really_inserted + really_deleted
        }

        kept, migrated, dropped = self._caches.migrate_for_delta(
            old_token,
            new_token,
            old_decomposition,
            new_decomposition,
            inserted_relations,
            deleted_unkeyed_relations,
            deleted_keys,
        )

        self._caches.put_decomposition(new_token, new_decomposition)
        # The old snapshot stays materialised — and its decomposition stays
        # in the (LRU-bounded) cache — for time travel: the head is about
        # to move, making it an ``as_of``-reachable ancestor.
        self._caches.remember_snapshot(old_token, database)
        self._registry.set_head(name, new_database, keys, new_token)
        if new_token != old_token:
            # Calibration residuals describe the estimator, not the data,
            # so the tables follow the head across the delta (the old
            # token's persisted entries stay for time travel).
            self._caches.adopt_calibration(old_token, new_token)
            # Record the *effective* core, which is exactly invertible —
            # the property lineage replay (both directions) relies on.
            self._lineage.record_head(
                name,
                new_token,
                kind="delta",
                delta=Delta(inserted=really_inserted, deleted=really_deleted),
            )
            self._lineage.maybe_checkpoint(name)

        return UpdateReport(
            database=name,
            old_digest=old_token[0],
            new_digest=new_token[0],
            inserted=len(really_inserted),
            deleted=len(really_deleted),
            touched_blocks=len(touched_keys),
            blocks_before=len(old_decomposition),
            blocks_after=len(new_decomposition),
            selectors_kept=kept,
            selectors_migrated=migrated,
            selectors_dropped=dropped,
            elapsed=time.perf_counter() - started,
        )

    # ------------------------------------------------------------------ #
    # batch and stream scheduling
    # ------------------------------------------------------------------ #
    def run(
        self,
        jobs: Iterable[CountJob],
        workers: Optional[int] = None,
    ) -> BatchReport:
        """Run a batch of jobs and return the aggregated report.

        Jobs carrying ``as_of_range`` are expanded in place into one
        per-version ``as_of`` job each (report indices are positions in
        the *expanded* batch — exactly the batch a caller writing the
        per-version jobs by hand would have submitted).
        """
        job_list = self._expand_ranges(list(jobs))
        workers = self._resolve_workers(workers)
        started = time.perf_counter()
        results, workers = self._run_segment(job_list, workers, first_index=0)
        elapsed = time.perf_counter() - started
        return BatchReport(
            results=tuple(results),
            elapsed=elapsed,
            workers=workers,
            cache_stats=aggregate_cache_stats(results),
        )

    def run_stream(
        self,
        items: Iterable[Union[CountJob, UpdateJob]],
        workers: Optional[int] = None,
    ) -> BatchReport:
        """Run a stream that interleaves count jobs with delta updates.

        Stream order is the semantics: every count job observes exactly the
        snapshots produced by the updates before it.  Contiguous runs of
        count jobs form segments that may fan out to worker processes;
        updates execute in the parent between segments via
        :meth:`apply_delta`.  Indices in the returned report are positions
        in the original stream (updates included) with ``as_of_range``
        jobs expanded in place — each expands *when the stream reaches
        it*, so a range may reference versions recorded by updates
        earlier in the same stream, and indices match the hand-expanded
        stream exactly.
        """
        workers = self._resolve_workers(workers)
        started = time.perf_counter()
        results: List[JobResult] = []
        updates: List[UpdateReport] = []
        used_workers = 1
        next_index = 0

        segment: List[Tuple[int, CountJob]] = []

        def flush_segment() -> None:
            nonlocal used_workers
            if not segment:
                return
            jobs = [job for _, job in segment]
            segment_results, segment_workers = self._run_segment(
                jobs, workers, first_index=segment[0][0]
            )
            used_workers = max(used_workers, segment_workers)
            results.extend(segment_results)
            segment.clear()

        for item in list(items):
            if isinstance(item, UpdateJob):
                flush_segment()
                report = self.apply_delta(item.database, item.delta)
                updates.append(
                    replace(report, index=next_index, label=item.label)
                )
                next_index += 1
            elif isinstance(item, CountJob):
                # Ranges expand here — after every update before them has
                # applied — so their endpoints resolve against the chain
                # state a per-version ``as_of`` job at this stream
                # position would see.
                if item.as_of_range is not None:
                    expanded_jobs = self.expand_range(item)
                else:
                    expanded_jobs = [item]
                for expanded_job in expanded_jobs:
                    segment.append((next_index, expanded_job))
                    next_index += 1
            else:
                raise EngineError(
                    f"stream items must be CountJob or UpdateJob, "
                    f"got {type(item).__name__}"
                )
        flush_segment()

        elapsed = time.perf_counter() - started
        return BatchReport(
            results=tuple(results),
            elapsed=elapsed,
            workers=used_workers,
            cache_stats=aggregate_cache_stats(results),
            updates=tuple(updates),
        )

    # ------------------------------------------------------------------ #
    # shared-replay range resolution
    # ------------------------------------------------------------------ #
    def expand_range(self, job: CountJob) -> List[CountJob]:
        """The per-version ``as_of`` jobs a range job stands for.

        One job per recorded version from ``ref_lo`` to ``ref_hi``
        inclusive (in chain order between the endpoints), each pinned to
        its version's digest.  Because ``as_of`` never enters the derived
        seed, the expansion is bit-identical to a caller writing the
        per-version jobs by hand.
        """
        if job.as_of_range is None:
            raise EngineError("expand_range needs a job carrying as_of_range")
        ref_lo, ref_hi = job.as_of_range
        records = self._lineage.resolve_range(job.database, ref_lo, ref_hi)
        return [
            replace(job, as_of=record.digest, as_of_range=None)
            for record in records
        ]

    def run_range(
        self,
        job: CountJob,
        first_index: int = 0,
        worker_label: str = "sequential",
    ) -> List[Union[JobResult, RangeFailure]]:
        """Run one ``as_of_range`` job: expand, share the walk, answer.

        The range's versions are resolved via **one** shared replay walk
        (the per-version jobs then hit the warmed token-keyed caches),
        and each version is answered independently: a version that fails
        to materialise or count becomes an in-band :class:`RangeFailure`
        instead of voiding the range.  Outcomes are returned in version
        order, indexed from ``first_index``.
        """
        expanded = self.expand_range(job)
        self._prewarm_as_of_groups(expanded)
        outcomes: List[Union[JobResult, RangeFailure]] = []
        for offset, item in enumerate(expanded):
            index = first_index + offset
            try:
                outcomes.append(
                    self.run_job(item, index=index, worker_label=worker_label)
                )
            except ReproError as exc:
                outcomes.append(RangeFailure(index=index, error=exc))
        return outcomes

    def _expand_ranges(self, items: List) -> List:
        """Replace every ``as_of_range`` job in ``items`` by its expansion."""
        if not any(
            isinstance(item, CountJob) and item.as_of_range is not None
            for item in items
        ):
            return items
        expanded: List = []
        for item in items:
            if isinstance(item, CountJob) and item.as_of_range is not None:
                expanded.extend(self.expand_range(item))
            else:
                expanded.append(item)
        return expanded

    def _prewarm_as_of_groups(self, job_list: Sequence[CountJob]) -> None:
        """One shared replay walk per same-name ``as_of`` group.

        Groups the segment's time-travel jobs by database name, and
        resolves each group's distinct references through
        :meth:`LineageService.materialise_range
        <repro.engine.lineage_service.LineageService.materialise_range>`
        (which sorts them by lineage position and replays the chain
        once).  Purely a cache warmer: the per-job path then serves the
        very same digest-verified snapshots from the token-keyed caches,
        so results and ordering are bit-identical to the unwarmed path —
        and references that fail to resolve here are simply skipped, so
        the per-job path surfaces their errors unchanged.
        """
        groups: Dict[str, List[Union[str, int]]] = {}
        for item in job_list:
            if isinstance(item, CountJob) and item.as_of is not None:
                groups.setdefault(item.database, []).append(item.as_of)
        for name, refs in groups.items():
            distinct = list(dict.fromkeys(refs))
            if len(distinct) < 2:
                continue  # nothing to amortise
            try:
                self._registry.lookup(name)
                chain = self._lineage.chain(name)
            except ReproError:
                continue
            resolvable = []
            for ref in distinct:
                try:
                    chain.resolve(ref)
                except ReproError:
                    continue
                resolvable.append(ref)
            if not resolvable:
                continue
            try:
                self._lineage.materialise_range(name, resolvable)
            except ReproError:
                # Fall back to the per-job path (e.g. an ancestor behind
                # a compacted record): the failing job raises there with
                # its ordinary error, the rest replay independently.
                pass

    def _resolve_workers(self, workers: Optional[int]) -> int:
        if workers is None:
            workers = self._workers or 1
        if workers < 1:
            raise EngineError(f"workers must be >= 1, got {workers}")
        return workers

    def _run_segment(
        self, job_list: Sequence[CountJob], workers: int, first_index: int
    ) -> Tuple[List[JobResult], int]:
        """Run one contiguous run of count jobs, sequentially or fanned out.

        ``first_index`` offsets the job indices so stream positions (and
        hence derived per-job seeds) are identical between ``run`` and
        ``run_stream``, sequential and pooled.
        """
        indices = range(first_index, first_index + len(job_list))
        if workers == 1 or len(job_list) <= 1:
            self._prewarm_as_of_groups(job_list)
            return (
                [self.run_job(job, index) for index, job in zip(indices, job_list)],
                1,
            )
        chunksize = max(1, len(job_list) // (workers * 4))
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_initialise_worker,
            initargs=(
                self._registry.snapshot_map(),
                self._caches.persist_directory,
                self._lineage.chain_map(),
            ),
        ) as executor:
            results = list(
                executor.map(
                    _run_job_in_worker,
                    zip(indices, job_list),
                    chunksize=chunksize,
                )
            )
        return results, workers


# ---------------------------------------------------------------------- #
# worker-process plumbing
# ---------------------------------------------------------------------- #
#: The per-process pool a worker builds from the databases it was primed
#: with.  Module-level so `executor.map` only ships (index, job) pairs.
_WORKER_POOL = None


def _initialise_worker(
    databases: Dict[str, Tuple[Database, PrimaryKeySet]],
    persist_dir: Optional[Path] = None,
    lineage: Optional[Dict[str, Lineage]] = None,
) -> None:
    """Prime a worker process: register every database once, build caches.

    Workers share the parent's persistent store directory (safe: entries
    are pure functions of their content-hash key and writes are atomic,
    so concurrent writers merely race to store the same bytes) and adopt
    the parent's lineage chains so ``as_of`` references resolve in the
    worker exactly as they would sequentially.
    """
    from .pool import SolverPool  # deferred: pool is the layer above us

    global _WORKER_POOL
    pool = SolverPool(persist_dir=persist_dir)
    for name, (database, keys) in databases.items():
        pool.register(name, database, keys)
    for name, chain in (lineage or {}).items():
        pool.adopt_lineage(name, chain)
    _WORKER_POOL = pool


def _run_job_in_worker(item: Tuple[int, CountJob]) -> JobResult:
    """Run one job inside a primed worker process."""
    index, job = item
    if _WORKER_POOL is None:  # pragma: no cover - initializer always runs first
        raise EngineError("worker used before initialisation")
    return _WORKER_POOL.run_job(index=index, job=job, worker_label=f"pid-{os.getpid()}")
