"""Batch job files: the on-disk format of ``repro batch``.

A job file is one JSON document::

    {
      "databases": {
        "hr":      {"path": "hr.json"},
        "sensors": {"relations": {...}, "facts": [...], "keys": {...}}
      },
      "jobs": [
        {"database": "hr", "query": "EXISTS x. Employee(1, x, 'HR')"},
        {"update": "hr",
         "insert": [{"relation": "Employee", "arguments": [3, "Eve", "IT"]}],
         "delete": [{"relation": "Employee", "arguments": [1, "Ann", "HR"]}]},
        {"database": "hr", "query": "EXISTS x. Employee(1, x, 'HR')",
         "as_of": -1},
        {"database": "hr", "query": "Employee(1, x, y)",
         "answer_variables": ["x", "y"], "answer": ["Bob", "HR"],
         "method": "fpras", "epsilon": 0.1, "delta": 0.05, "seed": 7}
      ]
    }

Each database is either a ``{"path": ...}`` reference to a database JSON
file (as written by :func:`repro.db.io.save_json`; relative paths resolve
against the job file's directory) or an inline payload in the same format.
Entries of the ``jobs`` array carrying an ``"update"`` field are *delta*
entries (:class:`~repro.engine.jobs.UpdateJob`): they mutate the named
snapshot in stream order, so later jobs count against the updated
database.  Count entries may carry ``"as_of"`` — an ancestor content
digest (or unique ≥8-character prefix) or a non-positive chain index
(``-1`` = one version ago) — to count against a *historical* snapshot of
the name's recorded lineage instead of its head.  Every malformed shape
raises :class:`~repro.errors.BatchSpecError`, which the CLI maps to a
nonzero exit status.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Mapping, Tuple, Union

from ..db.constraints import PrimaryKeySet
from ..db.database import Database
from ..db.io import database_from_json, load_json
from ..errors import BatchSpecError, ReproError
from .jobs import CountJob, UpdateJob

__all__ = ["load_job_file", "parse_job_document", "parse_stream_item"]

#: A stream element of a job file: a counting job or a delta update.
StreamItem = Union[CountJob, UpdateJob]


def parse_stream_item(payload: object) -> StreamItem:
    """Parse one stream entry: an update if it carries ``"update"``, else a job.

    This is the unit the ``jobs`` array of a job file is made of, and the
    line format of ``repro serve``'s stdin mode (one JSON object per
    line).  Malformed shapes raise
    :class:`~repro.errors.BatchSpecError`.

    >>> parse_stream_item({"database": "hr", "query": "EXISTS x. R(1, x)"}).method
    'auto'
    >>> parse_stream_item({"update": "hr",
    ...     "insert": [{"relation": "R", "arguments": [2, "b"]}]}).database
    'hr'
    """
    if isinstance(payload, Mapping) and "update" in payload:
        return UpdateJob.from_json(payload)
    return CountJob.from_json(payload)  # type: ignore[arg-type]


def parse_job_document(
    payload: object,
    base_directory: Union[str, Path, None] = None,
    require_jobs: bool = True,
) -> Tuple[Dict[str, Tuple[Database, PrimaryKeySet]], List[StreamItem]]:
    """Validate a job document and materialise its databases and jobs.

    ``require_jobs=False`` accepts a databases-only document (an absent or
    empty ``jobs`` array) — the shape ``repro serve`` uses when the jobs
    arrive over stdin instead of inside the file.

    >>> databases, jobs = parse_job_document({
    ...     "databases": {"r": {"relations": {"R": ["k", "v"]},
    ...                         "keys": {"R": [1]},
    ...                         "facts": [{"relation": "R", "arguments": [1, "a"]}]}},
    ...     "jobs": [{"database": "r", "query": "EXISTS x. R(1, x)"}],
    ... })
    >>> (sorted(databases), len(jobs))
    (['r'], 1)
    """
    if not isinstance(payload, Mapping):
        raise BatchSpecError(
            f"a job file must hold a JSON object, got {type(payload).__name__}"
        )
    unknown = set(payload) - {"databases", "jobs"}
    if unknown:
        raise BatchSpecError(f"unknown job-file sections: {sorted(unknown)}")
    databases_section = payload.get("databases")
    jobs_section = payload.get("jobs", [])
    if not isinstance(databases_section, Mapping) or not databases_section:
        raise BatchSpecError("'databases' must be a non-empty object")
    if not isinstance(jobs_section, list) or (require_jobs and not jobs_section):
        raise BatchSpecError("'jobs' must be a non-empty array")

    base = Path(base_directory) if base_directory is not None else Path.cwd()
    databases: Dict[str, Tuple[Database, PrimaryKeySet]] = {}
    for name, entry in databases_section.items():
        if not isinstance(entry, Mapping):
            raise BatchSpecError(f"database {name!r} must be a JSON object")
        try:
            if "path" in entry:
                path = Path(str(entry["path"]))
                if not path.is_absolute():
                    path = base / path
                databases[name] = load_json(path)
            else:
                databases[name] = database_from_json(entry)
        except (ReproError, OSError, ValueError, KeyError, TypeError) as exc:
            raise BatchSpecError(f"database {name!r} could not be loaded: {exc}") from exc

    jobs: List[StreamItem] = [parse_stream_item(entry) for entry in jobs_section]
    for job in jobs:
        if job.database not in databases:
            raise BatchSpecError(
                f"job references unknown database {job.database!r}; "
                f"declared: {sorted(databases)}"
            )
    return databases, jobs


def load_job_file(
    path: Union[str, Path], require_jobs: bool = True
) -> Tuple[Dict[str, Tuple[Database, PrimaryKeySet]], List[StreamItem]]:
    """Load and validate a job file from disk.

    ``require_jobs`` is forwarded to :func:`parse_job_document`:
    ``False`` accepts a databases-only file (``repro serve --stdin``).
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise BatchSpecError(f"cannot read job file {path}: {exc}") from exc
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise BatchSpecError(f"job file {path} is not valid JSON: {exc}") from exc
    return parse_job_document(
        payload, base_directory=path.parent, require_jobs=require_jobs
    )
