"""Bounded LRU caches with hit/miss accounting.

The batch engine memoises three kinds of derived state (parsed queries,
block decompositions, certificate selectors), all of which are pure
functions of immutable inputs.  A small ordered-dict LRU is all that is
needed; the cache additionally keeps hit/miss/eviction counters so batch
reports can expose cache provenance (which is both an observability feature
and what the equivalence test harness uses to prove the cached paths were
actually exercised).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Generic, Hashable, Tuple, TypeVar

__all__ = ["LRUCache"]

V = TypeVar("V")


class LRUCache(Generic[V]):
    """A bounded least-recently-used mapping with hit/miss counters.

    ``maxsize <= 0`` disables caching entirely (every lookup misses and
    nothing is stored), which gives callers a uniform way to switch the
    memoisation off without branching.

    >>> cache = LRUCache(maxsize=2)
    >>> cache.get_or_compute("a", lambda: 1)
    (1, False)
    >>> cache.get_or_compute("a", lambda: 99)  # hit: the factory never runs
    (1, True)
    >>> cache.put("b", 2); cache.put("c", 3)
    >>> "a" in cache  # the least recently used entry was evicted
    False
    >>> cache.stats()["evictions"]
    1
    """

    def __init__(self, maxsize: int) -> None:
        self._maxsize = int(maxsize)
        self._data: "OrderedDict[Hashable, V]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def maxsize(self) -> int:
        """The bound on the number of cached entries."""
        return self._maxsize

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        """Membership test; does not touch recency or the counters."""
        return key in self._data

    def get_or_compute(self, key: Hashable, factory: Callable[[], V]) -> Tuple[V, bool]:
        """Return ``(value, was_hit)``, computing and caching on a miss."""
        if key in self._data:
            self.hits += 1
            self._data.move_to_end(key)
            return self._data[key], True
        self.misses += 1
        value = factory()
        if self._maxsize > 0:
            self._data[key] = value
            if len(self._data) > self._maxsize:
                self._data.popitem(last=False)
                self.evictions += 1
        return value, False

    def put(self, key: Hashable, value: V) -> None:
        """Insert (or refresh) an entry, evicting the oldest if needed."""
        if self._maxsize <= 0:
            return
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        if len(self._data) > self._maxsize:
            self._data.popitem(last=False)
            self.evictions += 1

    def discard(self, key: Hashable) -> None:
        """Drop an entry if present (cache invalidation hook)."""
        self._data.pop(key, None)

    def items(self) -> Tuple[Tuple[Hashable, V], ...]:
        """A snapshot of ``(key, value)`` pairs, oldest first.

        Returned as a tuple (not a view) so callers may mutate the cache
        while iterating — the delta-migration path discards and re-inserts
        entries mid-walk.  Does not touch recency or the counters.
        """
        return tuple(self._data.items())

    def discard_where(self, predicate: Callable[[Hashable], bool]) -> int:
        """Drop every entry whose key satisfies ``predicate``; return count.

        Used for prefix invalidation: dropping all derived state of one
        database means dropping every key rooted in its name.
        """
        doomed = [key for key in self._data if predicate(key)]
        for key in doomed:
            del self._data[key]
        return len(doomed)

    def clear(self) -> None:
        """Drop every entry (counters are kept; they describe the lifetime)."""
        self._data.clear()

    def stats(self) -> Dict[str, int]:
        """Lifetime counters plus the current size, as a JSON-able dict."""
        return {
            "size": len(self._data),
            "maxsize": self._maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def __repr__(self) -> str:
        return (
            f"LRUCache(size={len(self._data)}/{self._maxsize}, "
            f"hits={self.hits}, misses={self.misses})"
        )
