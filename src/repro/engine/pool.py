"""The batch counting engine: :class:`SolverPool`.

A :class:`SolverPool` answers streams of :class:`~repro.engine.jobs.CountJob`
requests over one or more registered databases, amortising the state that a
fresh :class:`~repro.core.CQASolver` would recompute per call:

``query`` layer
    parsed ASTs of the textual queries (keyed by formula text and answer
    variables);
``decomposition`` layer
    the block decomposition ``B1 ≺ ... ≺ Bn`` of each database (keyed by
    registration name);
``selectors`` layer
    the :class:`~repro.repairs.counting.PreparedCertificates` of each
    (database, query, answer) triple — the UCQ rewriting, the valid
    certificates and their selectors, shared by the certificate-family
    exact counters, the FPRAS membership test and the Karp–Luby estimator.

Cache invalidation model: registered databases are treated as immutable
snapshots — every cache key is rooted in the registration name, so
re-registering a name (or calling :meth:`SolverPool.invalidate`) drops all
derived state for that name.  There is deliberately no mtime/content
tracking: mutating a :class:`~repro.db.database.Database` in place behind
the pool's back is undefined behaviour, exactly like mutating it behind a
``CQASolver``'s cached decomposition.

Parallelism: :meth:`SolverPool.run` optionally fans jobs out to a process
pool.  Workers are primed once with the registered databases (via the pool
initializer, so databases are pickled once per worker, not once per job)
and build their own caches.  Results are **bit-identical** to a sequential
run: exact counts are deterministic, and randomised jobs derive their seed
from the job itself (:meth:`CountJob.effective_seed`), never from shared
mutable generator state.  Independent connected components inside one
union-of-boxes count can likewise be mapped over an executor
(``component_executor``), which helps single huge jobs rather than large
batches.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import Executor, ProcessPoolExecutor
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.solver import count_query
from ..db.blocks import BlockDecomposition
from ..db.constraints import PrimaryKeySet
from ..db.database import Database
from ..errors import EngineError
from ..query.ast import Query
from ..query.classify import is_existential_positive
from ..query.parser import parse_query
from ..repairs.counting import PreparedCertificates, prepare_certificates
from .cache import LRUCache
from .jobs import BatchReport, CountJob, JobResult, aggregate_cache_stats

__all__ = ["SolverPool"]


class SolverPool:
    """A multi-database, multi-query counting engine with shared caches.

    Parameters
    ----------
    max_databases:
        Bound on cached block decompositions (one per registered database).
    max_queries:
        Bound on cached parsed queries.
    max_prepared:
        Bound on cached certificate/selector preparations (one per
        (database, query, answer) triple).
    workers:
        Default process count for :meth:`run`; ``None`` or ``1`` runs
        sequentially in-process.
    """

    def __init__(
        self,
        max_databases: int = 32,
        max_queries: int = 256,
        max_prepared: int = 1024,
        workers: Optional[int] = None,
    ) -> None:
        self._databases: Dict[str, Tuple[Database, PrimaryKeySet]] = {}
        self._decompositions: LRUCache[BlockDecomposition] = LRUCache(max_databases)
        self._queries: LRUCache[Query] = LRUCache(max_queries)
        self._prepared: LRUCache[PreparedCertificates] = LRUCache(max_prepared)
        self._workers = workers

    # ------------------------------------------------------------------ #
    # database registry
    # ------------------------------------------------------------------ #
    def register(self, name: str, database: Database, keys: PrimaryKeySet) -> None:
        """Register (or replace) a database snapshot under ``name``.

        Re-registering a name invalidates every cache entry derived from
        the previous snapshot.
        """
        if not name:
            raise EngineError("a database registration needs a non-empty name")
        if name in self._databases:
            self.invalidate(name)
        self._databases[name] = (database, keys)

    def register_scenario(self, scenario) -> None:
        """Register a named :class:`~repro.workloads.scenarios.Scenario`."""
        self.register(scenario.name, scenario.database, scenario.keys)

    def invalidate(self, name: str) -> None:
        """Drop all cached state derived from the database ``name``."""
        self._decompositions.discard(name)
        self._prepared.discard_where(lambda key: key[0] == name)

    def database_names(self) -> Tuple[str, ...]:
        """The registered database names, in registration order."""
        return tuple(self._databases)

    def lookup(self, name: str) -> Tuple[Database, PrimaryKeySet]:
        """The registered (database, keys) pair for ``name``."""
        try:
            return self._databases[name]
        except KeyError as exc:
            raise EngineError(
                f"unknown database {name!r}; registered: {sorted(self._databases)}"
            ) from exc

    def decomposition(self, name: str) -> BlockDecomposition:
        """The (cached) block decomposition of the database ``name``."""
        database, keys = self.lookup(name)
        value, _ = self._decompositions.get_or_compute(
            name, lambda: BlockDecomposition(database, keys)
        )
        return value

    def cache_stats(self) -> Dict[str, Dict[str, int]]:
        """Lifetime statistics of the pool's own cache layers."""
        return {
            "query": self._queries.stats(),
            "decomposition": self._decompositions.stats(),
            "selectors": self._prepared.stats(),
        }

    # ------------------------------------------------------------------ #
    # single-job execution
    # ------------------------------------------------------------------ #
    def run_job(
        self,
        job: CountJob,
        index: int = 0,
        component_executor: Optional[Executor] = None,
        worker_label: str = "sequential",
    ) -> JobResult:
        """Run one job against the pool's caches and return its result.

        ``component_executor`` optionally parallelises the decomposed
        union-of-boxes count across connected components (useful for one
        huge exact job; batches parallelise across jobs instead).
        """
        started = time.perf_counter()
        database, keys = self.lookup(job.database)
        hits: List[str] = []
        misses: List[str] = []

        query, query_hit = self._queries.get_or_compute(
            (job.query, job.answer_variables),
            lambda: parse_query(job.query, answer_variables=list(job.answer_variables)),
        )
        (hits if query_hit else misses).append("query")

        decomposition, decomposition_hit = self._decompositions.get_or_compute(
            job.database, lambda: BlockDecomposition(database, keys)
        )
        (hits if decomposition_hit else misses).append("decomposition")

        prepared: Optional[PreparedCertificates] = None
        if job.method != "naive" and is_existential_positive(query):
            prepared, prepared_hit = self._prepared.get_or_compute(
                (job.database, job.query, job.answer_variables, job.answer),
                lambda: prepare_certificates(
                    database, keys, query, job.answer, decomposition=decomposition
                ),
            )
            (hits if prepared_hit else misses).append("selectors")

        map_fn = component_executor.map if component_executor is not None else None
        result = count_query(
            database,
            keys,
            query,
            answer=job.answer,
            method=job.method,
            epsilon=job.epsilon,
            delta=job.delta,
            rng=job.effective_seed(index) if job.is_randomised else None,
            decomposition=decomposition,
            prepared=prepared,
            map_fn=map_fn,
        )
        return JobResult(
            index=index,
            job=job,
            satisfying=result.satisfying,
            total=result.total,
            method=result.method,
            is_estimate=result.is_estimate,
            elapsed=time.perf_counter() - started,
            cache_hits=tuple(hits),
            cache_misses=tuple(misses),
            worker=worker_label,
        )

    # ------------------------------------------------------------------ #
    # batch execution
    # ------------------------------------------------------------------ #
    def run(
        self,
        jobs: Iterable[CountJob],
        workers: Optional[int] = None,
    ) -> BatchReport:
        """Run a batch of jobs and return the aggregated report.

        ``workers`` > 1 fans the jobs out to a process pool primed with the
        registered databases; otherwise the batch runs sequentially against
        this pool's caches.  Either way the per-job counts are
        bit-identical (see the module docstring).
        """
        job_list = list(jobs)
        if workers is None:
            workers = self._workers or 1
        if workers < 1:
            raise EngineError(f"workers must be >= 1, got {workers}")
        started = time.perf_counter()

        if workers == 1 or len(job_list) <= 1:
            results = [self.run_job(job, index) for index, job in enumerate(job_list)]
            workers = 1
        else:
            chunksize = max(1, len(job_list) // (workers * 4))
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_initialise_worker,
                initargs=(dict(self._databases),),
            ) as executor:
                results = list(
                    executor.map(
                        _run_job_in_worker,
                        enumerate(job_list),
                        chunksize=chunksize,
                    )
                )

        elapsed = time.perf_counter() - started
        return BatchReport(
            results=tuple(results),
            elapsed=elapsed,
            workers=workers,
            cache_stats=aggregate_cache_stats(results),
        )


# ---------------------------------------------------------------------- #
# worker-process plumbing
# ---------------------------------------------------------------------- #
#: The per-process pool a worker builds from the databases it was primed
#: with.  Module-level so `executor.map` only ships (index, job) pairs.
_WORKER_POOL: Optional[SolverPool] = None


def _initialise_worker(databases: Dict[str, Tuple[Database, PrimaryKeySet]]) -> None:
    """Prime a worker process: register every database once, build caches."""
    global _WORKER_POOL
    pool = SolverPool()
    for name, (database, keys) in databases.items():
        pool.register(name, database, keys)
    _WORKER_POOL = pool


def _run_job_in_worker(item: Tuple[int, CountJob]) -> JobResult:
    """Run one job inside a primed worker process."""
    index, job = item
    if _WORKER_POOL is None:  # pragma: no cover - initializer always runs first
        raise EngineError("worker used before initialisation")
    return _WORKER_POOL.run_job(index=index, job=job, worker_label=f"pid-{os.getpid()}")
