"""The batch counting engine: :class:`SolverPool`.

A :class:`SolverPool` answers streams of :class:`~repro.engine.jobs.CountJob`
requests over one or more registered databases, amortising the state that a
fresh :class:`~repro.core.CQASolver` would recompute per call:

``query`` layer
    parsed ASTs of the textual queries (keyed by formula text and answer
    variables);
``decomposition`` layer
    the block decomposition ``B1 ≺ ... ≺ Bn`` of each database, keyed by
    the snapshot token — the pair ``(database content digest, keys
    digest)`` — so equal snapshots share one decomposition regardless of
    the names they are registered under;
``selectors`` layer
    the :class:`~repro.repairs.counting.PreparedCertificates` of each
    (snapshot, query, answer) triple — the UCQ rewriting, the valid
    certificates and their selectors, shared by the certificate-family
    exact counters, the FPRAS membership test and the Karp–Luby estimator.
    Optionally mirrored to a persistent on-disk cache
    (:class:`~repro.engine.persist.SelectorDiskCache`) so restarts stay
    warm.

Snapshot model: :meth:`SolverPool.register` freezes the database (further
in-place mutation raises :class:`~repro.errors.FrozenDatabaseError`) and
every cache key is rooted in the snapshot token, so a registered name can
be *updated* without losing unrelated work: :meth:`SolverPool.apply_delta`
derives the next snapshot, updates the block decomposition incrementally,
and walks the selector cache — entries whose certificates cannot be
affected by the delta are *migrated* (their selector coordinates remapped
to the new decomposition), and only entries the delta actually touches are
dropped for recomputation.

History and time travel: every ``register``/``apply_delta`` appends a
:class:`~repro.db.lineage.LineageRecord` to the name's
:class:`~repro.db.lineage.Lineage` — the chain of ``(digest, parent
digest, effective delta)`` steps — persisted through the snapshot catalog
(:class:`~repro.store.SnapshotCatalog`) whenever a ``persist_dir`` is
configured.  A :class:`~repro.engine.jobs.CountJob` carrying ``as_of``
(an ancestor digest, or a negative chain index such as ``-2`` for "two
versions ago") is served against the *historical* snapshot: the pool
replays the recorded delta chain backwards from the head (verified
against the recorded content digest), caches the materialised ancestor,
and — because every cache is keyed by snapshot token — serves it through
the same selector/decomposition caches that were warm when that snapshot
was live.  :meth:`SolverPool.rollback` re-registers an ancestor as the
head.

Parallelism: :meth:`SolverPool.run` optionally fans jobs out to a process
pool.  Workers are primed once with the registered databases (via the pool
initializer, so databases are pickled once per worker, not once per job)
and build their own caches.  Results are **bit-identical** to a sequential
run: exact counts are deterministic, and randomised jobs derive their seed
from the job itself (:meth:`CountJob.effective_seed`), never from shared
mutable generator state.  Independent connected components inside one
union-of-boxes count can likewise be mapped over an executor
(``component_executor``), which helps single huge jobs rather than large
batches.  :meth:`SolverPool.run_stream` extends batches with interleaved
:class:`~repro.engine.jobs.UpdateJob` deltas; jobs between two updates form
a segment that may fan out, while the updates themselves run in the parent
process in stream order.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import Executor, ProcessPoolExecutor
from dataclasses import replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..core.solver import count_query
from ..db.blocks import BlockDecomposition
from ..db.constraints import PrimaryKeySet
from ..db.database import Database
from ..db.delta import Delta
from ..db.lineage import Lineage, LineageRecord, SnapshotRef
from ..errors import EngineError, LineageError
from ..lams.selectors import Selector
from ..query.ast import Query
from ..query.classify import is_existential_positive
from ..query.parser import parse_query
from ..query.rewriting import UCQ
from ..repairs.counting import PreparedCertificates, prepare_certificates
from ..store import DecompositionDiskCache, SelectorDiskCache, SnapshotCatalog
from .cache import LRUCache
from .jobs import (
    BatchReport,
    CountJob,
    JobResult,
    UpdateJob,
    UpdateReport,
    aggregate_cache_stats,
)

__all__ = ["SolverPool"]

#: The snapshot token every non-query cache key is rooted in.
SnapshotToken = Tuple[str, str]


def _ucq_relations(ucq: UCQ) -> Set[str]:
    """Every relation an atom of the UCQ may map into."""
    return {
        atom.relation for disjunct in ucq.disjuncts for atom in disjunct.atoms
    }


class SolverPool:
    """A multi-database, multi-query counting engine with shared caches.

    Parameters
    ----------
    max_databases:
        Bound on cached block decompositions (one per distinct snapshot).
    max_queries:
        Bound on cached parsed queries.
    max_prepared:
        Bound on cached certificate/selector preparations (one per
        (snapshot, query, answer) triple).
    workers:
        Default process count for :meth:`run`; ``None`` or ``1`` runs
        sequentially in-process.
    persist_dir:
        Optional directory for the persistent caches.  When given, selector
        preparations (``*.sel`` entries) and block decompositions (``*.dec``
        entries) are mirrored to disk (content-hash keyed) and a freshly
        constructed pool pointed at the same directory serves an unchanged
        workload without recomputing a single selector or decomposition.
    persist_max_entries, persist_max_age:
        Optional garbage-collection bounds for each on-disk cache: keep at
        most ``persist_max_entries`` entries per layer (least recently used
        evicted first) and none older than ``persist_max_age`` seconds.
        Bounds are enforced at construction, periodically during long runs,
        and on explicit :meth:`collect_garbage` calls.

    Example — the paper's running Employee instance, served twice so the
    second job only touches warm caches:

    >>> from repro.db import Database, PrimaryKeySet, fact
    >>> pool = SolverPool()
    >>> pool.register(
    ...     "hr",
    ...     Database([fact("Employee", 1, "Bob", "HR"),
    ...               fact("Employee", 1, "Bob", "IT"),
    ...               fact("Employee", 2, "Alice", "IT"),
    ...               fact("Employee", 2, "Tim", "IT")]),
    ...     PrimaryKeySet.from_dict({"Employee": [1]}),
    ... )
    >>> job = CountJob(
    ...     database="hr",
    ...     query="EXISTS x, y, z. (Employee(1, x, y) AND Employee(2, z, y))")
    >>> report = pool.run([job, job])
    >>> [(result.satisfying, result.total) for result in report.results]
    [(2, 4), (2, 4)]
    >>> report.results[1].cache_hits
    ('query', 'decomposition', 'selectors')
    """

    def __init__(
        self,
        max_databases: int = 32,
        max_queries: int = 256,
        max_prepared: int = 1024,
        workers: Optional[int] = None,
        persist_dir: Optional[Union[str, Path]] = None,
        persist_max_entries: Optional[int] = None,
        persist_max_age: Optional[float] = None,
    ) -> None:
        self._databases: Dict[str, Tuple[Database, PrimaryKeySet]] = {}
        self._tokens: Dict[str, SnapshotToken] = {}
        self._decompositions: LRUCache[BlockDecomposition] = LRUCache(max_databases)
        self._queries: LRUCache[Query] = LRUCache(max_queries)
        self._prepared: LRUCache[PreparedCertificates] = LRUCache(max_prepared)
        #: Materialised historical snapshots, keyed by snapshot token.
        self._snapshots: LRUCache[Database] = LRUCache(max_databases)
        self._lineage: Dict[str, Lineage] = {}
        self._workers = workers
        self._persist: Optional[SelectorDiskCache] = None
        self._persist_decompositions: Optional[DecompositionDiskCache] = None
        self._catalog: Optional[SnapshotCatalog] = None
        if persist_dir is not None:
            # Startup GC is deferred (collect_on_init=False) until the
            # first job runs: by then every registered name has pinned its
            # live token, so the startup collection — like every other one
            # — can never evict active state.
            self._persist = SelectorDiskCache(
                persist_dir, persist_max_entries, persist_max_age,
                collect_on_init=False,
            )
            self._persist_decompositions = DecompositionDiskCache(
                persist_dir, persist_max_entries, persist_max_age,
                collect_on_init=False,
            )
            self._catalog = SnapshotCatalog(persist_dir)
        self._startup_gc_pending = (
            persist_dir is not None
            and (persist_max_entries is not None or persist_max_age is not None)
        )
        self._selector_recomputations = 0
        self._decomposition_recomputations = 0

    # ------------------------------------------------------------------ #
    # database registry
    # ------------------------------------------------------------------ #
    def register(self, name: str, database: Database, keys: PrimaryKeySet) -> None:
        """Register (or replace) a database snapshot under ``name``.

        The database is frozen in place: snapshots are immutable, and any
        later in-place mutation attempt raises
        :class:`~repro.errors.FrozenDatabaseError` instead of silently
        corrupting content-addressed cache entries.  Re-registering a name
        with different content drops the previous snapshot's cached state.

        Registration is a lineage event: if the name's recorded chain (in
        memory, or loaded from the snapshot catalog when a ``persist_dir``
        is configured) already ends at this exact snapshot the chain is
        adopted as-is — which is how a restarted pool regains its history;
        otherwise a fresh ``"register"`` record is appended.
        """
        if not name:
            raise EngineError("a database registration needs a non-empty name")
        database.freeze()
        token = (database.content_digest(), keys.content_digest())
        if name in self._databases and self._tokens.get(name) != token:
            self.invalidate(name)
        self._databases[name] = (database, keys)
        self._tokens[name] = token
        self._record_head(name, token, kind="register")

    def register_scenario(self, scenario) -> None:
        """Register a named :class:`~repro.workloads.scenarios.Scenario`."""
        self.register(scenario.name, scenario.database, scenario.keys)

    def invalidate(self, name: str) -> None:
        """Drop all cached in-memory state derived from the snapshot of ``name``.

        When two names are registered to byte-identical snapshots they share
        cache entries; invalidating either one drops the shared entries (a
        perf-only effect — entries are pure and recomputable).  The
        persistent disk cache is never invalidated: its entries are keyed by
        content and can only ever be cold, not wrong.
        """
        token = self._tokens.get(name)
        if token is None:
            return
        self._decompositions.discard(token)
        self._prepared.discard_where(lambda key: key[0] == token)

    def database_names(self) -> Tuple[str, ...]:
        """The registered database names, in registration order."""
        return tuple(self._databases)

    def lookup(self, name: str) -> Tuple[Database, PrimaryKeySet]:
        """The registered (database, keys) pair for ``name``."""
        try:
            return self._databases[name]
        except KeyError as exc:
            raise EngineError(
                f"unknown database {name!r}; registered: {sorted(self._databases)}"
            ) from exc

    def snapshot_token(self, name: str) -> SnapshotToken:
        """The content-addressed (database digest, keys digest) of ``name``."""
        self.lookup(name)
        return self._tokens[name]

    # ------------------------------------------------------------------ #
    # lineage and time travel
    # ------------------------------------------------------------------ #
    def lineage(self, name: str) -> Lineage:
        """The recorded snapshot chain of ``name`` (head last)."""
        self.lookup(name)
        return self._lineage[name]

    def _chain_for(self, name: str) -> Lineage:
        """The in-memory chain of ``name``, loading the catalog on first use."""
        chain = self._lineage.get(name)
        if chain is None:
            if self._catalog is not None:
                chain = self._catalog.lineage(name)
            else:
                chain = Lineage(name)
            self._lineage[name] = chain
        return chain

    def _record_head(
        self,
        name: str,
        token: SnapshotToken,
        kind: str,
        delta: Optional[Delta] = None,
    ) -> None:
        """Append a lineage record for the new head (and persist it).

        A no-op when the chain already ends at ``token`` — re-registering
        identical content (including every restart against a persisted
        catalog) extends nothing.
        """
        chain = self._chain_for(name)
        head = chain.head
        if head is not None and (head.digest, head.keys_digest) == token:
            self._refresh_pins()
            return
        record = LineageRecord(
            name=name,
            sequence=len(chain),
            digest=token[0],
            keys_digest=token[1],
            parent_digest=head.digest if head is not None else None,
            kind=kind,
            delta=delta,
            wall_time=time.time(),
        )
        self._lineage[name] = chain.append(record)
        if self._catalog is not None:
            self._catalog.append(record)
        self._refresh_pins()

    def _refresh_pins(self) -> None:
        """Pin the live snapshot tokens (the lineage heads) against GC.

        Disk-cache garbage collection must never evict entries of the
        *current* snapshot of a registered name — that would force
        recomputation of active state on the next load.
        """
        live = set(self._tokens.values())
        if self._persist is not None:
            self._persist.set_pinned_tokens(live)
        if self._persist_decompositions is not None:
            self._persist_decompositions.set_pinned_tokens(live)

    def _run_startup_gc(self) -> None:
        """Run the deferred startup collection, once, pins in place."""
        if self._startup_gc_pending:
            self.collect_garbage()

    def adopt_lineage(self, name: str, lineage: Lineage) -> None:
        """Replace the recorded chain of ``name`` with a richer one.

        Worker processes are primed with the parent pool's chains so that
        ``as_of`` references resolve identically in fanned-out runs even
        without a shared catalog.  The chain must belong to ``name`` and
        end at the currently registered snapshot.
        """
        database, keys = self.lookup(name)
        head = lineage.head
        if lineage.name != name or head is None:
            raise EngineError(
                f"cannot adopt a lineage of {lineage.name!r} for {name!r}"
            )
        token = (database.content_digest(), keys.content_digest())
        if (head.digest, head.keys_digest) != token:
            raise EngineError(
                f"adopted lineage of {name!r} ends at {head.digest[:12]}, "
                f"but the registered snapshot is {token[0][:12]}"
            )
        self._lineage[name] = lineage

    def materialise(
        self, name: str, ref: SnapshotRef
    ) -> Tuple[Database, PrimaryKeySet, SnapshotToken]:
        """The (database, keys, token) of a recorded snapshot of ``name``.

        ``ref`` is an ``as_of`` reference (digest, unique ≥8-hex-char
        prefix, or non-positive chain index).  The head resolves without
        work; an ancestor is reconstructed by replaying the recorded
        effective-delta chain from the head (verified against the
        recorded content digest — see
        :meth:`~repro.db.lineage.Lineage.materialise`) and cached by
        token, so repeated historical queries replay nothing.
        """
        database, keys = self.lookup(name)
        chain = self.lineage(name)
        record = chain.resolve(ref)
        token = (record.digest, record.keys_digest)
        if token == self._tokens[name]:
            return database, keys, token
        if record.keys_digest != keys.content_digest():
            raise LineageError(
                f"snapshot {record.digest[:12]} of {name!r} was recorded "
                f"under different key constraints; its lineage cannot be "
                f"replayed against the current keys"
            )
        snapshot, _ = self._snapshots.get_or_compute(
            token, lambda: chain.materialise(database, record.digest).freeze()
        )
        return snapshot, keys, token

    def rollback(self, name: str, ref: SnapshotRef) -> LineageRecord:
        """Re-register a recorded ancestor of ``name`` as the head.

        The ancestor is materialised (and digest-verified) through the
        lineage, becomes the snapshot served for ``name``, and the move is
        recorded as a ``"rollback"`` lineage record — history is appended
        to, never rewritten, so the rolled-back-over states remain
        reachable via ``as_of``.  Returns the new head record.  Rolling
        back to the current head is a no-op.
        """
        snapshot, keys, token = self.materialise(name, ref)
        if token != self._tokens[name]:
            self._databases[name] = (snapshot, keys)
            self._tokens[name] = token
            self._record_head(name, token, kind="rollback")
        return self._lineage[name].head  # type: ignore[return-value]

    def decomposition(self, name: str) -> BlockDecomposition:
        """The (cached) block decomposition of the database ``name``."""
        database, keys = self.lookup(name)
        token = self._tokens[name]
        value, _ = self._decompositions.get_or_compute(
            token, lambda: self._build_decomposition(token, database, keys)
        )
        return value

    def _build_decomposition(
        self,
        token: SnapshotToken,
        database: Database,
        keys: PrimaryKeySet,
        origin: Optional[Dict[str, str]] = None,
    ) -> BlockDecomposition:
        """Load the snapshot's decomposition from disk, or compute and store it.

        ``origin`` optionally receives ``{"source": "disk" | "computed"}``
        so callers can report provenance (the ``decomposition-disk`` cache
        layer in job results).
        """
        if self._persist_decompositions is not None:
            loaded = self._persist_decompositions.load(token, database, keys)
            if loaded is not None:
                if origin is not None:
                    origin["source"] = "disk"
                return loaded
        if origin is not None:
            origin["source"] = "computed"
        self._decomposition_recomputations += 1
        value = BlockDecomposition(database, keys)
        if self._persist_decompositions is not None:
            self._persist_decompositions.store(token, value)
        return value

    def cache_stats(self) -> Dict[str, Dict[str, int]]:
        """Lifetime statistics of the pool's own cache layers.

        In-memory layers (``query``, ``decomposition``, ``selectors``)
        report LRU counters; when a ``persist_dir`` is configured the
        on-disk layers (``selectors-disk``, ``decomposition-disk``) report
        their hit/miss/store/corruption counters *and* garbage-collection
        evictions, so aggregators (the async server's ``stats()``) never
        have to hand-roll persist-layer accounting.
        """
        stats = {
            "query": self._queries.stats(),
            "decomposition": self._decompositions.stats(),
            "selectors": self._prepared.stats(),
        }
        if self._persist is not None:
            stats["selectors-disk"] = self._persist.stats()
        if self._persist_decompositions is not None:
            stats["decomposition-disk"] = self._persist_decompositions.stats()
        return stats

    def collect_garbage(
        self,
        max_entries: Optional[int] = None,
        max_age_seconds: Optional[float] = None,
    ) -> Dict[str, int]:
        """Run GC on the on-disk caches; return per-layer eviction counts.

        Arguments override the bounds configured at construction (see
        ``persist_max_entries`` / ``persist_max_age``).  A pool without a
        ``persist_dir`` returns an empty mapping.  Entries of the *live*
        snapshots of the registered names (the lineage heads) are pinned
        and never evicted, so GC cannot force recomputation of active
        state; other evictions only make future loads cold — they can
        never make a count wrong.
        """
        self._startup_gc_pending = False
        evicted: Dict[str, int] = {}
        if self._persist is not None:
            evicted["selectors-disk"] = self._persist.collect_garbage(
                max_entries, max_age_seconds
            )
        if self._persist_decompositions is not None:
            evicted["decomposition-disk"] = self._persist_decompositions.collect_garbage(
                max_entries, max_age_seconds
            )
        return evicted

    @property
    def selector_recomputations(self) -> int:
        """How many selector preparations this pool actually computed.

        Memory hits, disk hits and delta migrations all leave this counter
        untouched — it counts real ``prepare_certificates`` work, which is
        what the warm-restart guarantee of the persistent cache is stated
        in terms of.
        """
        return self._selector_recomputations

    @property
    def decomposition_recomputations(self) -> int:
        """How many block decompositions this pool actually computed.

        The decomposition analogue of :attr:`selector_recomputations`:
        memory hits, disk hits and incremental delta updates leave it
        untouched, so a restarted pool with a warm ``persist_dir`` serving
        an unchanged workload keeps it at zero.
        """
        return self._decomposition_recomputations

    # ------------------------------------------------------------------ #
    # incremental updates
    # ------------------------------------------------------------------ #
    def apply_delta(self, name: str, delta: Delta) -> UpdateReport:
        """Update the snapshot of ``name`` in place of a re-registration.

        The database and its block decomposition are updated incrementally
        (cost proportional to the touched blocks, not the database), and the
        selector cache is *walked, not dropped*: an entry for the old
        snapshot survives — remapped to the new decomposition's coordinates
        — unless the delta could actually change its certificates, i.e.

        * a fact was inserted into a relation the entry's UCQ mentions
          (inserts can create certificates anywhere in those relations), or
        * a fact was deleted from a block one of the entry's selectors pins,
          or from an un-keyed relation the UCQ mentions (either can destroy
          a certificate).

        Everything else — including deletes in blocks the entry never
        looked at, and any change to relations outside the query — keeps
        the entry warm.  Counts against the new snapshot remain
        bit-identical to a cold rebuild; the randomized delta property
        suite pins that equivalence.
        """
        started = time.perf_counter()
        self._run_startup_gc()
        database, keys = self.lookup(name)
        old_token = self._tokens[name]
        old_decomposition = self.decomposition(name)

        new_database = database.apply_delta(delta)
        new_decomposition = old_decomposition.apply_delta(delta, database=new_database)
        new_token: SnapshotToken = (
            new_database.content_digest(),
            keys.content_digest(),
        )

        really_inserted, really_deleted = delta.effective_against(database)
        inserted_relations = {item.relation for item in really_inserted}
        deleted_unkeyed_relations = {
            item.relation for item in really_deleted if not keys.has_key(item.relation)
        }
        deleted_keys = {keys.key_value(item) for item in really_deleted}
        touched_keys = {
            keys.key_value(item) for item in really_inserted + really_deleted
        }

        kept = migrated = dropped = 0
        for key, prepared in self._prepared.items():
            if key[0] != old_token:
                kept += 1
                continue
            remapped = self._migrate_prepared(
                prepared,
                old_decomposition,
                new_decomposition,
                inserted_relations,
                deleted_unkeyed_relations,
                deleted_keys,
            )
            self._prepared.discard(key)
            if remapped is None:
                dropped += 1
                continue
            migrated += 1
            new_key = (new_token,) + key[1:]
            self._prepared.put(new_key, remapped)
            if self._persist is not None:
                query_text, answer_variables, answer = key[1:]
                self._persist.store(
                    new_token, query_text, answer_variables, answer, remapped
                )

        self._decompositions.put(new_token, new_decomposition)
        if self._persist_decompositions is not None:
            # Persist the incrementally-derived decomposition so a restart
            # against the *new* snapshot is warm without ever rebuilding it.
            self._persist_decompositions.store(new_token, new_decomposition)
        # The old snapshot stays materialised — and its decomposition stays
        # in the (LRU-bounded) cache — for time travel: the head is about
        # to move, making it an ``as_of``-reachable ancestor.
        self._snapshots.put(old_token, database)
        self._databases[name] = (new_database, keys)
        self._tokens[name] = new_token
        if new_token != old_token:
            # Record the *effective* core, which is exactly invertible —
            # the property lineage replay (both directions) relies on.
            self._record_head(
                name,
                new_token,
                kind="delta",
                delta=Delta(inserted=really_inserted, deleted=really_deleted),
            )

        return UpdateReport(
            database=name,
            old_digest=old_token[0],
            new_digest=new_token[0],
            inserted=len(really_inserted),
            deleted=len(really_deleted),
            touched_blocks=len(touched_keys),
            blocks_before=len(old_decomposition),
            blocks_after=len(new_decomposition),
            selectors_kept=kept,
            selectors_migrated=migrated,
            selectors_dropped=dropped,
            elapsed=time.perf_counter() - started,
        )

    @staticmethod
    def _migrate_prepared(
        prepared: PreparedCertificates,
        old_decomposition: BlockDecomposition,
        new_decomposition: BlockDecomposition,
        inserted_relations: Set[str],
        deleted_unkeyed_relations: Set[str],
        deleted_keys: Set,
    ) -> Optional[PreparedCertificates]:
        """Remap one selector entry to the new snapshot, or None to drop it.

        Soundness argument: certificates are homomorphisms into facts of the
        UCQ's relations whose image is key-consistent, and their selectors
        pin exactly the image facts of *keyed* relations.  If the delta
        inserts nothing into the UCQ's relations, no new certificate can
        appear; if it deletes nothing from a pinned block nor from an
        un-keyed UCQ relation, no existing certificate can disappear and no
        pinned fact can change its position inside its block.  The only
        thing left to fix up is that block *indices* shift globally when
        blocks are inserted or removed — hence the coordinate remap.
        """
        relations = _ucq_relations(prepared.ucq)
        if inserted_relations & relations:
            return None
        if deleted_unkeyed_relations & relations:
            return None
        pinned_keys = {
            old_decomposition[coordinate].key_value
            for selector in prepared.selectors
            for coordinate, _ in selector.pins
        }
        if pinned_keys & deleted_keys:
            return None

        remap: Dict[int, int] = {}
        for key_value in pinned_keys:
            old_index = old_decomposition.index_for_key(key_value)
            new_index = new_decomposition.index_for_key(key_value)
            if old_index is None or new_index is None:  # pragma: no cover
                return None  # defensive: pinned block vanished unexpectedly
            remap[old_index] = new_index
        remapped_selectors = tuple(
            Selector({remap[index]: element for index, element in selector.pins})
            for selector in prepared.selectors
        )
        return PreparedCertificates(
            prepared.ucq, remapped_selectors, prepared.certificate_count
        )

    # ------------------------------------------------------------------ #
    # single-job execution
    # ------------------------------------------------------------------ #
    def run_job(
        self,
        job: CountJob,
        index: int = 0,
        component_executor: Optional[Executor] = None,
        worker_label: str = "sequential",
    ) -> JobResult:
        """Run one job against the pool's caches and return its result.

        ``component_executor`` optionally parallelises the decomposed
        union-of-boxes count across connected components (useful for one
        huge exact job; batches parallelise across jobs instead).

        A job carrying ``as_of`` runs against the referenced *historical*
        snapshot: the database is materialised through the lineage (cached
        after the first replay) and, because every cache layer below is
        keyed by snapshot token, the job hits whatever selector and
        decomposition state — in memory or on disk — was built when that
        snapshot was live.
        """
        started = time.perf_counter()
        self._run_startup_gc()
        database, keys = self.lookup(job.database)
        token = self._tokens[job.database]
        if job.as_of is not None:
            database, keys, token = self.materialise(job.database, job.as_of)
        hits: List[str] = []
        misses: List[str] = []

        query, query_hit = self._queries.get_or_compute(
            (job.query, job.answer_variables),
            lambda: parse_query(job.query, answer_variables=list(job.answer_variables)),
        )
        (hits if query_hit else misses).append("query")

        decomposition_origin: Dict[str, str] = {}
        decomposition, decomposition_hit = self._decompositions.get_or_compute(
            token,
            lambda: self._build_decomposition(
                token, database, keys, decomposition_origin
            ),
        )
        if decomposition_hit:
            hits.append("decomposition")
        elif decomposition_origin.get("source") == "disk":
            hits.append("decomposition-disk")
        else:
            misses.append("decomposition")

        prepared: Optional[PreparedCertificates] = None
        if job.method != "naive" and is_existential_positive(query):
            origin: Dict[str, str] = {}

            def prepare_with_provenance() -> PreparedCertificates:
                if self._persist is not None:
                    loaded = self._persist.load(
                        token, job.query, job.answer_variables, job.answer
                    )
                    if loaded is not None:
                        origin["source"] = "disk"
                        return loaded
                origin["source"] = "computed"
                self._selector_recomputations += 1
                value = prepare_certificates(
                    database, keys, query, job.answer, decomposition=decomposition
                )
                if self._persist is not None:
                    self._persist.store(
                        token, job.query, job.answer_variables, job.answer, value
                    )
                return value

            prepared, prepared_hit = self._prepared.get_or_compute(
                (token, job.query, job.answer_variables, job.answer),
                prepare_with_provenance,
            )
            if prepared_hit:
                hits.append("selectors")
            elif origin.get("source") == "disk":
                hits.append("selectors-disk")
            else:
                misses.append("selectors")

        map_fn = component_executor.map if component_executor is not None else None
        result = count_query(
            database,
            keys,
            query,
            answer=job.answer,
            method=job.method,
            epsilon=job.epsilon,
            delta=job.delta,
            rng=job.effective_seed(index) if job.is_randomised else None,
            decomposition=decomposition,
            prepared=prepared,
            map_fn=map_fn,
        )
        return JobResult(
            index=index,
            job=job,
            satisfying=result.satisfying,
            total=result.total,
            method=result.method,
            is_estimate=result.is_estimate,
            elapsed=time.perf_counter() - started,
            cache_hits=tuple(hits),
            cache_misses=tuple(misses),
            worker=worker_label,
        )

    # ------------------------------------------------------------------ #
    # batch execution
    # ------------------------------------------------------------------ #
    def run(
        self,
        jobs: Iterable[CountJob],
        workers: Optional[int] = None,
    ) -> BatchReport:
        """Run a batch of jobs and return the aggregated report.

        ``workers`` > 1 fans the jobs out to a process pool primed with the
        registered databases; otherwise the batch runs sequentially against
        this pool's caches.  Either way the per-job counts are
        bit-identical (see the module docstring).
        """
        job_list = list(jobs)
        workers = self._resolve_workers(workers)
        started = time.perf_counter()
        results, workers = self._run_segment(job_list, workers, first_index=0)
        elapsed = time.perf_counter() - started
        return BatchReport(
            results=tuple(results),
            elapsed=elapsed,
            workers=workers,
            cache_stats=aggregate_cache_stats(results),
        )

    def run_stream(
        self,
        items: Iterable[Union[CountJob, UpdateJob]],
        workers: Optional[int] = None,
    ) -> BatchReport:
        """Run a stream that interleaves count jobs with delta updates.

        Stream order is the semantics: every count job observes exactly the
        snapshots produced by the updates before it.  Contiguous runs of
        count jobs form segments that may fan out to worker processes;
        updates execute in the parent pool between segments via
        :meth:`apply_delta`.  Indices in the returned report are positions
        in the original stream (updates included), so results and update
        reports interleave unambiguously.
        """
        item_list = list(items)
        workers = self._resolve_workers(workers)
        started = time.perf_counter()
        results: List[JobResult] = []
        updates: List[UpdateReport] = []
        used_workers = 1

        segment: List[Tuple[int, CountJob]] = []

        def flush_segment() -> None:
            nonlocal used_workers
            if not segment:
                return
            jobs = [job for _, job in segment]
            segment_results, segment_workers = self._run_segment(
                jobs, workers, first_index=segment[0][0]
            )
            used_workers = max(used_workers, segment_workers)
            results.extend(segment_results)
            segment.clear()

        for index, item in enumerate(item_list):
            if isinstance(item, UpdateJob):
                flush_segment()
                report = self.apply_delta(item.database, item.delta)
                updates.append(replace(report, index=index, label=item.label))
            elif isinstance(item, CountJob):
                segment.append((index, item))
            else:
                raise EngineError(
                    f"stream items must be CountJob or UpdateJob, "
                    f"got {type(item).__name__}"
                )
        flush_segment()

        elapsed = time.perf_counter() - started
        return BatchReport(
            results=tuple(results),
            elapsed=elapsed,
            workers=used_workers,
            cache_stats=aggregate_cache_stats(results),
            updates=tuple(updates),
        )

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _resolve_workers(self, workers: Optional[int]) -> int:
        if workers is None:
            workers = self._workers or 1
        if workers < 1:
            raise EngineError(f"workers must be >= 1, got {workers}")
        return workers

    def _run_segment(
        self, job_list: Sequence[CountJob], workers: int, first_index: int
    ) -> Tuple[List[JobResult], int]:
        """Run one contiguous run of count jobs, sequentially or fanned out.

        ``first_index`` offsets the job indices so stream positions (and
        hence derived per-job seeds) are identical between ``run`` and
        ``run_stream``, sequential and pooled.
        """
        indices = range(first_index, first_index + len(job_list))
        if workers == 1 or len(job_list) <= 1:
            return (
                [self.run_job(job, index) for index, job in zip(indices, job_list)],
                1,
            )
        chunksize = max(1, len(job_list) // (workers * 4))
        persist_dir = self._persist.directory if self._persist is not None else None
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_initialise_worker,
            initargs=(dict(self._databases), persist_dir, dict(self._lineage)),
        ) as executor:
            results = list(
                executor.map(
                    _run_job_in_worker,
                    zip(indices, job_list),
                    chunksize=chunksize,
                )
            )
        return results, workers


# ---------------------------------------------------------------------- #
# worker-process plumbing
# ---------------------------------------------------------------------- #
#: The per-process pool a worker builds from the databases it was primed
#: with.  Module-level so `executor.map` only ships (index, job) pairs.
_WORKER_POOL: Optional[SolverPool] = None


def _initialise_worker(
    databases: Dict[str, Tuple[Database, PrimaryKeySet]],
    persist_dir: Optional[Path] = None,
    lineage: Optional[Dict[str, Lineage]] = None,
) -> None:
    """Prime a worker process: register every database once, build caches.

    Workers share the parent's persistent selector cache directory (safe:
    entries are pure functions of their content-hash key and writes are
    atomic, so concurrent writers merely race to store the same bytes)
    and adopt the parent's lineage chains so ``as_of`` references resolve
    in the worker exactly as they would sequentially.
    """
    global _WORKER_POOL
    pool = SolverPool(persist_dir=persist_dir)
    for name, (database, keys) in databases.items():
        pool.register(name, database, keys)
    for name, chain in (lineage or {}).items():
        pool.adopt_lineage(name, chain)
    _WORKER_POOL = pool


def _run_job_in_worker(item: Tuple[int, CountJob]) -> JobResult:
    """Run one job inside a primed worker process."""
    index, job = item
    if _WORKER_POOL is None:  # pragma: no cover - initializer always runs first
        raise EngineError("worker used before initialisation")
    return _WORKER_POOL.run_job(index=index, job=job, worker_label=f"pid-{os.getpid()}")
