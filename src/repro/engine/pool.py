"""The batch counting engine facade: :class:`SolverPool`.

A :class:`SolverPool` answers streams of :class:`~repro.engine.jobs.CountJob`
requests over one or more registered databases.  It is a thin facade over
the four layers of the engine core, each usable (and tested) on its own:
the :class:`~repro.engine.registry.SnapshotRegistry` (name -> frozen
snapshot state), the
:class:`~repro.engine.cache_coordinator.CacheCoordinator` (every cache
layer, memory and disk, with GC and live-token pinning), the
:class:`~repro.engine.lineage_service.LineageService` (history recording,
``as_of`` materialisation, rollback and **checkpoint compaction**) and
the :class:`~repro.engine.executor.JobExecutor` (jobs, deltas,
batch/stream scheduling, worker fan-out).

The facade exists so the public API stays exactly what PR 1–4 shipped:
callers (the server's shards, the CLI, job files) construct one object
and never see the layering.  The caching model, invalidation rules and
determinism contract are documented in :mod:`repro.engine`'s package
docstring (and ``docs/architecture.md``); history, time travel and
checkpoint semantics in :mod:`repro.engine.lineage_service` (and
``docs/history.md``).

>>> from repro.db import Database, PrimaryKeySet, fact
>>> pool = SolverPool()
>>> pool.register("hr", Database([fact("Employee", 1, "Bob", "HR"),
...                               fact("Employee", 1, "Bob", "IT")]),
...               PrimaryKeySet.from_dict({"Employee": [1]}))
>>> report = pool.run([CountJob(database="hr",
...                             query="EXISTS x. Employee(1, x, 'HR')")] * 2)
>>> [(r.satisfying, r.total) for r in report.results]
[(1, 2), (1, 2)]
>>> report.results[1].cache_hits
('query', 'decomposition', 'selectors')
"""

from __future__ import annotations

from concurrent.futures import Executor
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..db.blocks import BlockDecomposition
from ..db.constraints import PrimaryKeySet
from ..db.database import Database
from ..db.delta import Delta
from ..db.lineage import CheckpointRecord, Lineage, LineageRecord, SnapshotRef
from ..store.tuning import CheckpointPolicy
from .cache_coordinator import CacheCoordinator
from .executor import JobExecutor, RangeFailure
from .jobs import BatchReport, CountJob, JobResult, UpdateJob, UpdateReport
from .lineage_service import LineageService
from .registry import SnapshotRegistry, SnapshotToken

__all__ = ["SolverPool"]


class SolverPool:
    """A multi-database, multi-query counting engine with shared caches.

    ``max_databases``/``max_queries``/``max_prepared`` bound the in-memory
    LRU layers; ``workers`` is the default fan-out of :meth:`run`;
    ``persist_dir`` enables the persistent store (selector/decomposition
    caches, checkpoint snapshots, the snapshot catalog) with optional GC
    bounds ``persist_max_entries``/``persist_max_age``/``persist_max_bytes``
    (the byte budget is split between the entry kinds by observed
    hit-rate-per-byte — see :func:`repro.store.split_byte_budget`);
    ``checkpoint_every`` cuts an automatic compaction checkpoint every
    that-many effective deltas of a name, so deep ``as_of`` replays stay
    O(distance to the nearest checkpoint) — :meth:`checkpoint` cuts one
    on demand.  ``checkpoint_policy`` replaces the fixed interval with a
    cost-model-driven :class:`~repro.store.CheckpointPolicy` (e.g.
    :class:`~repro.store.AdaptiveCheckpointPolicy`) that places
    checkpoints where observed reads earn them.
    """

    def __init__(
        self,
        max_databases: int = 32,
        max_queries: int = 256,
        max_prepared: int = 1024,
        workers: Optional[int] = None,
        persist_dir: Optional[Union[str, Path]] = None,
        persist_max_entries: Optional[int] = None,
        persist_max_age: Optional[float] = None,
        checkpoint_every: Optional[int] = None,
        checkpoint_policy: Optional[CheckpointPolicy] = None,
        persist_max_bytes: Optional[int] = None,
    ) -> None:
        self._registry = SnapshotRegistry()
        self._caches = CacheCoordinator(
            max_databases=max_databases,
            max_queries=max_queries,
            max_prepared=max_prepared,
            persist_dir=persist_dir,
            persist_max_entries=persist_max_entries,
            persist_max_age=persist_max_age,
            persist_max_bytes=persist_max_bytes,
        )
        self._lineage = LineageService(
            self._registry,
            self._caches,
            checkpoint_every=checkpoint_every,
            checkpoint_policy=checkpoint_policy,
        )
        self._executor = JobExecutor(
            self._registry, self._caches, self._lineage, workers=workers
        )

    # ------------------------------------------------------------------ #
    # database registry
    # ------------------------------------------------------------------ #
    def register(self, name: str, database: Database, keys: PrimaryKeySet) -> None:
        """Register (or replace) a frozen database snapshot under ``name``.

        A lineage event: a recorded chain already ending at this snapshot
        is adopted (how a restarted pool regains history), otherwise a
        fresh ``"register"`` record is appended.  Re-registering different
        content drops the previous snapshot's cached state.
        """
        token, displaced = self._registry.register(name, database, keys)
        if displaced is not None:
            self._caches.drop_token(displaced)
        self._lineage.record_head(name, token, kind="register")

    def forget(self, name: str) -> None:
        """Drop a registration entirely (the ownership-handoff path).

        The inverse of :meth:`register` for elastic sharding: the name
        leaves the registry, its in-memory derived state is dropped
        unless another name still points at the same content, and its
        lineage chain is released — the persistent catalog, when
        configured, keeps the durable history for the destination pool
        (or a later re-registration here) to reload.
        """
        token = self._registry.forget(name)
        if token not in self._registry.live_tokens():
            self._caches.drop_token(token)
        self._lineage.forget(name)

    def prime_handoff(self, name: str) -> Dict[str, object]:
        """Warm the caches for a snapshot that just arrived via handoff.

        Call after :meth:`register` (and :meth:`adopt_lineage`) on the
        destination of an ownership move; see
        :meth:`CacheCoordinator.prime_for_handoff` for the cost model.
        """
        database, keys = self._registry.lookup(name)
        return self._caches.prime_for_handoff(
            self._registry.token(name), database, keys
        )

    def register_scenario(self, scenario) -> None:
        """Register a named workload :class:`~repro.workloads.scenarios.Scenario`."""
        self.register(scenario.name, scenario.database, scenario.keys)

    def invalidate(self, name: str) -> None:
        """Drop the in-memory state of ``name``'s snapshot (perf-only).

        The persistent store is content-addressed — it can only ever be
        cold, not wrong — so it is never invalidated.
        """
        token = self._registry.get_token(name)
        if token is not None:
            self._caches.drop_token(token)

    def database_names(self) -> Tuple[str, ...]:
        """The registered database names, in registration order."""
        return self._registry.names()

    def lookup(self, name: str) -> Tuple[Database, PrimaryKeySet]:
        """The registered (database, keys) pair for ``name``."""
        return self._registry.lookup(name)

    def snapshot_token(self, name: str) -> SnapshotToken:
        """The content-addressed (database digest, keys digest) of ``name``."""
        return self._registry.token(name)

    # ------------------------------------------------------------------ #
    # lineage, time travel, checkpoints
    # ------------------------------------------------------------------ #
    def lineage(self, name: str) -> Lineage:
        """The recorded snapshot chain of ``name`` (head last)."""
        return self._lineage.lineage(name)

    def adopt_lineage(self, name: str, lineage: Lineage) -> None:
        """Replace the recorded chain of ``name`` with a richer one."""
        self._lineage.adopt(name, lineage)

    def materialise(
        self, name: str, ref: SnapshotRef
    ) -> Tuple[Database, PrimaryKeySet, SnapshotToken]:
        """The (database, keys, token) of a recorded snapshot of ``name``.

        Replayed (digest-verified) from the closest materialised source —
        the head or the nearest loadable checkpoint — and cached by token.
        """
        return self._lineage.materialise(name, ref)

    def materialise_range(
        self, name: str, refs: Iterable[SnapshotRef]
    ) -> List[Tuple[Database, PrimaryKeySet, SnapshotToken]]:
        """Materialise several recorded snapshots of ``name`` in one walk.

        A shared-replay :meth:`materialise`: the refs are settled by one
        breadth-first route over the delta chain (checkpoints as extra
        entry points), the chain is replayed once, and every resolved
        snapshot is digest-verified and cached exactly as if requested
        alone.  Results come back in ``refs`` order.
        """
        return self._lineage.materialise_range(name, list(refs))

    def resolve_range(
        self, name: str, ref_lo: SnapshotRef, ref_hi: SnapshotRef
    ) -> Tuple[LineageRecord, ...]:
        """The recorded snapshots of ``name`` between two refs, inclusive.

        Endpoint order is preserved: a descending pair yields the records
        newest-first.
        """
        return tuple(self._lineage.resolve_range(name, ref_lo, ref_hi))

    def rollback(self, name: str, ref: SnapshotRef) -> LineageRecord:
        """Re-register a recorded ancestor as the head (append-only)."""
        return self._lineage.rollback(name, ref)

    def checkpoint(
        self, name: str, compact: bool = False
    ) -> Optional[CheckpointRecord]:
        """Persist the current head of ``name`` as a compaction checkpoint.

        Requires a ``persist_dir``; idempotent on an already-checkpointed
        head; ``None`` if the snapshot could not be persisted.
        ``compact=True`` additionally releases the delta payloads covered
        by the newest checkpoint — an explicit, loudly-warned trade of
        time-travel reach for space (see
        :meth:`LineageService.compact
        <repro.engine.lineage_service.LineageService.compact>`).
        """
        return self._lineage.checkpoint(name, compact=compact)

    def checkpoints(self, name: str) -> Tuple[CheckpointRecord, ...]:
        """The known checkpoints of ``name``, oldest chain position first."""
        return self._lineage.checkpoints(name)

    # ------------------------------------------------------------------ #
    # cached state and maintenance
    # ------------------------------------------------------------------ #
    def decomposition(self, name: str) -> BlockDecomposition:
        """The (cached) block decomposition of the database ``name``."""
        database, keys = self._registry.lookup(name)
        value, _ = self._caches.decomposition(
            self._registry.token(name), database, keys
        )
        return value

    def cache_stats(self) -> Dict[str, Dict[str, int]]:
        """Lifetime statistics of every cache layer (memory and disk)."""
        return self._caches.cache_stats()

    def collect_garbage(
        self,
        max_entries: Optional[int] = None,
        max_age_seconds: Optional[float] = None,
        max_bytes: Optional[int] = None,
    ) -> Dict[str, int]:
        """Run GC on the on-disk layers (live tokens stay pinned).

        ``max_bytes`` bounds the *total* on-disk footprint: the budget is
        split between the entry kinds proportional to observed
        hit-rate-per-byte before each layer evicts down to its share.
        """
        return self._caches.collect_garbage(max_entries, max_age_seconds, max_bytes)

    def plan_byte_budget(
        self, max_bytes: Optional[int] = None
    ) -> Dict[str, Dict[str, object]]:
        """The per-layer byte-budget split GC would apply (no eviction)."""
        return self._caches.plan_byte_budget(max_bytes)

    @property
    def selector_recomputations(self) -> int:
        """How many selector preparations this pool actually computed.

        Memory hits, disk hits and delta migrations leave it untouched —
        the warm-restart guarantee is stated in terms of this counter.
        """
        return self._caches.selector_recomputations

    @property
    def decomposition_recomputations(self) -> int:
        """How many block decompositions this pool actually computed."""
        return self._caches.decomposition_recomputations

    # ------------------------------------------------------------------ #
    # anytime refinement and calibration
    # ------------------------------------------------------------------ #
    @property
    def pending_refinements(self) -> int:
        """Queued refine-to-exact continuations of served anytime jobs."""
        return self._executor.pending_refinements

    @property
    def refinements_completed(self) -> int:
        """Refine-to-exact continuations this pool has completed."""
        return self._executor.refinements_completed

    def drain_refinements(self, limit: Optional[int] = None) -> int:
        """Run queued refine-to-exact continuations (all, or ``limit``).

        Each computes the exact count of one served anytime job,
        publishes it through the lineage-keyed exact cache and feeds the
        conformal calibrator of its ``(token, method)`` pair.
        """
        return self._executor.drain_refinements(limit)

    def calibrate_from(self, jobs: Iterable[CountJob]) -> Dict[str, int]:
        """Record (estimate, exact) calibration pairs from a held-out batch."""
        return self._executor.calibrate_from(jobs)

    def calibration_stats(self) -> Dict[str, object]:
        """Statistics of the conformal calibration tables (and their store)."""
        return self._caches.calibration_stats()

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def apply_delta(self, name: str, delta: Delta) -> UpdateReport:
        """Update the snapshot of ``name`` incrementally (never drop-all).

        Unaffected selector entries migrate to the new snapshot, the
        effective delta is recorded as a lineage step, and an automatic
        checkpoint is cut when the compaction interval is due.  Counts
        against the new snapshot are bit-identical to a cold rebuild.
        """
        return self._executor.apply_delta(name, delta)

    def run_job(
        self,
        job: CountJob,
        index: int = 0,
        component_executor: Optional[Executor] = None,
        worker_label: str = "sequential",
    ) -> JobResult:
        """Run one job against the pool's caches and return its result."""
        return self._executor.run_job(job, index, component_executor, worker_label)

    def run(
        self, jobs: Iterable[CountJob], workers: Optional[int] = None
    ) -> BatchReport:
        """Run a batch of jobs (fanned out when ``workers`` > 1)."""
        return self._executor.run(jobs, workers)

    def expand_range(self, job: CountJob) -> List[CountJob]:
        """Expand an ``as_of_range`` job into its per-version ``as_of`` jobs."""
        return self._executor.expand_range(job)

    def run_range(
        self,
        job: CountJob,
        first_index: int = 0,
        worker_label: str = "sequential",
    ) -> List[Union[JobResult, RangeFailure]]:
        """Run an ``as_of_range`` job, one outcome per version, in order.

        The range is expanded (:meth:`expand_range`), the underlying
        snapshots are pre-materialised through one shared replay walk,
        and each version's job runs exactly as an independent ``as_of``
        job would — bit-identical results.  A version that fails yields
        an in-band :class:`~repro.engine.executor.RangeFailure` instead
        of aborting the rest of the range.
        """
        return self._executor.run_range(
            job, first_index=first_index, worker_label=worker_label
        )

    def run_stream(
        self,
        items: Iterable[Union[CountJob, UpdateJob]],
        workers: Optional[int] = None,
    ) -> BatchReport:
        """Run a stream interleaving count jobs with delta updates."""
        return self._executor.run_stream(items, workers)

    def __repr__(self) -> str:
        return f"SolverPool(databases={list(self._registry.names())!r})"
