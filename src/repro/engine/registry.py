"""The snapshot registry: which frozen snapshot each name points at.

The lowest layer of the engine core.  A :class:`SnapshotRegistry` is a
plain name -> ``(database, keys)`` map with one invariant: every
registered database is **frozen** (immutable, content-addressed) and its
snapshot token — the ``(database digest, keys digest)`` pair every cache
key is rooted in — is computed exactly once per head move and kept
alongside.  Nothing here records history, caches derived state or runs
jobs; those belong to the lineage service, the cache coordinator and the
executor stacked above.

>>> from repro.db import Database, PrimaryKeySet, fact
>>> registry = SnapshotRegistry()
>>> db = Database([fact("R", 1, "a")])
>>> keys = PrimaryKeySet.from_dict({"R": [1]})
>>> token, displaced = registry.register("live", db, keys)
>>> (registry.token("live") == token, displaced, registry.names())
(True, None, ('live',))
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..db.constraints import PrimaryKeySet
from ..db.database import Database
from ..errors import EngineError

__all__ = ["SnapshotRegistry", "SnapshotToken"]

#: The snapshot token every non-query cache key is rooted in.
SnapshotToken = Tuple[str, str]


class SnapshotRegistry:
    """Name -> frozen ``(database, keys)`` state, with token bookkeeping."""

    def __init__(self) -> None:
        self._databases: Dict[str, Tuple[Database, PrimaryKeySet]] = {}
        self._tokens: Dict[str, SnapshotToken] = {}

    def __contains__(self, name: str) -> bool:
        return name in self._databases

    def register(
        self, name: str, database: Database, keys: PrimaryKeySet
    ) -> Tuple[SnapshotToken, Optional[SnapshotToken]]:
        """Register (or replace) the snapshot of ``name``; freeze it.

        Returns ``(token, displaced_token)`` where ``displaced_token`` is
        the previous token when the name was registered to *different*
        content (the caller drops that token's cached state) and ``None``
        otherwise.
        """
        if not name:
            raise EngineError("a database registration needs a non-empty name")
        database.freeze()
        token: SnapshotToken = (database.content_digest(), keys.content_digest())
        displaced = None
        previous = self._tokens.get(name)
        if name in self._databases and previous != token:
            displaced = previous
        self._databases[name] = (database, keys)
        self._tokens[name] = token
        return token, displaced

    def set_head(
        self,
        name: str,
        database: Database,
        keys: PrimaryKeySet,
        token: SnapshotToken,
    ) -> None:
        """Move a registered name to an already-frozen snapshot.

        The delta and rollback paths derive (or materialise) the new
        snapshot themselves and already hold its token; this is the raw
        head move without re-hashing.
        """
        self.lookup(name)
        self._databases[name] = (database, keys)
        self._tokens[name] = token

    def lookup(self, name: str) -> Tuple[Database, PrimaryKeySet]:
        """The registered (database, keys) pair for ``name``."""
        try:
            return self._databases[name]
        except KeyError as exc:
            raise EngineError(
                f"unknown database {name!r}; registered: {sorted(self._databases)}"
            ) from exc

    def token(self, name: str) -> SnapshotToken:
        """The content-addressed (database digest, keys digest) of ``name``."""
        self.lookup(name)
        return self._tokens[name]

    def get_token(self, name: str) -> Optional[SnapshotToken]:
        """Like :meth:`token`, but ``None`` for unregistered names."""
        return self._tokens.get(name)

    def forget(self, name: str) -> SnapshotToken:
        """Drop a registration entirely; returns its (former) token.

        The source side of an ownership handoff: the name leaves this
        registry so its token stops pinning disk-cache entries here and
        the destination registry becomes the sole owner.  Unknown names
        raise :class:`~repro.errors.EngineError`.
        """
        self.lookup(name)
        del self._databases[name]
        return self._tokens.pop(name)

    def names(self) -> Tuple[str, ...]:
        """The registered names, in registration order."""
        return tuple(self._databases)

    def live_tokens(self) -> Tuple[SnapshotToken, ...]:
        """The tokens of every registered head (the GC pin set)."""
        return tuple(self._tokens.values())

    def snapshot_map(self) -> Dict[str, Tuple[Database, PrimaryKeySet]]:
        """A shallow copy of the registry (worker-process priming)."""
        return dict(self._databases)

    def __repr__(self) -> str:
        return f"SnapshotRegistry({list(self._databases)!r})"
