"""The batch counting engine: many queries, many databases, shared caches.

:class:`~repro.core.CQASolver` is a single-database façade: every solver
instance recomputes the block decomposition, and every ``count`` call
recomputes the UCQ rewriting and the certificate selectors of its query.
That is the right shape for one-off use and the wrong shape for serving —
a workload of J jobs over D databases and Q distinct queries pays
``O(J)`` preparations where ``O(D + D·Q)`` suffice.  This package provides
the serving shape.

Layering
--------
The engine core is four modules, stacked; :class:`SolverPool`
(:mod:`repro.engine.pool`) is the thin public facade over all of them:

================================  =========================================
module                            owns
================================  =========================================
:mod:`repro.engine.registry`      name -> frozen snapshot state and tokens
:mod:`repro.engine.cache_coordinator`  every cache layer (memory + disk),
                                  GC, pinning, migration, statistics
:mod:`repro.engine.lineage_service`  history recording, ``as_of``
                                  materialisation, rollback, checkpoints
:mod:`repro.engine.executor`      jobs, deltas, batch/stream scheduling,
                                  worker fan-out
================================  =========================================

Caching model
-------------
:class:`SolverPool` keeps three bounded LRU layers, each memoising a pure
function of immutable inputs:

================  ===============================================  ==========================
layer             caches                                           keyed by
================  ===============================================  ==========================
``query``         parsed :class:`~repro.query.ast.Query` ASTs      (formula text, answer vars)
``decomposition``  :class:`~repro.db.blocks.BlockDecomposition`    snapshot token: (database
                                                                   content digest, keys digest)
``selectors``     :class:`~repro.repairs.counting.\
PreparedCertificates` (UCQ rewriting, valid
                  certificates, block selectors)                   (snapshot token, formula,
                                                                   answer vars, answer tuple)
================  ===============================================  ==========================

The ``selectors`` layer is the expensive one and is shared by *four*
consumers: the certificate/inclusion-exclusion/enumeration exact counters,
the FPRAS membership test and the Karp–Luby estimator.  It can additionally
be mirrored to a persistent, content-addressed on-disk cache
(``persist_dir``; see :mod:`repro.store`) so process restarts serve an
unchanged workload with zero selector recomputations.  The same directory
also holds the snapshot catalog: the pool records every
``register``/``apply_delta`` as a lineage step, and a job carrying
``as_of`` (an ancestor digest or a negative chain index) counts against
that *historical* snapshot — served through the very same token-keyed
caches, so a warm store answers time-travel queries without recomputing
anything.

Invalidation rules
------------------
* Registered databases are immutable, **content-addressed** snapshots:
  :meth:`SolverPool.register` freezes the database, and every non-query
  cache key is rooted in the snapshot token ``(content digest, keys
  digest)`` rather than the registration name.  Mutating a registered
  database in place raises :class:`~repro.errors.FrozenDatabaseError`.
* Updates are first-class: :meth:`SolverPool.apply_delta` (and
  :class:`UpdateJob` entries inside :meth:`SolverPool.run_stream` batches)
  derive the next snapshot incrementally and *migrate* every selector
  entry the delta provably cannot affect, dropping only entries whose
  blocks were touched — not the whole name.
* Parsed queries are never invalidated (text is content-addressed), only
  LRU-evicted.

Determinism contract
--------------------
A pooled run is bit-identical to a sequential run of the same job list:
exact counts are deterministic; randomised jobs draw their generator from
:meth:`CountJob.effective_seed` (explicit seed, else an unsalted CRC of the
job content and position) rather than from shared generator state; and all
certificate/selector enumeration orders are deterministic (sorted) so even
order-sensitive estimators like Karp–Luby reproduce exactly across
processes.  The cross-method equivalence harness
(``tests/test_engine_equivalence.py``) pins this contract.
"""

from ..store import DecompositionDiskCache, SelectorDiskCache
from .cache import LRUCache
from .cache_coordinator import CacheCoordinator
from .executor import JobExecutor, RangeFailure
from .jobfile import load_job_file, parse_job_document, parse_stream_item
from .jobs import (
    BATCH_METHODS,
    CACHE_LAYERS,
    BatchReport,
    CountJob,
    JobResult,
    UpdateJob,
    UpdateReport,
    aggregate_cache_stats,
)
from .lineage_service import LineageService
from .pool import SolverPool
from .registry import SnapshotRegistry

__all__ = [
    "BATCH_METHODS",
    "CACHE_LAYERS",
    "BatchReport",
    "CacheCoordinator",
    "CountJob",
    "DecompositionDiskCache",
    "JobExecutor",
    "JobResult",
    "LRUCache",
    "LineageService",
    "RangeFailure",
    "SelectorDiskCache",
    "SnapshotRegistry",
    "SolverPool",
    "UpdateJob",
    "UpdateReport",
    "aggregate_cache_stats",
    "load_job_file",
    "parse_job_document",
    "parse_stream_item",
]
