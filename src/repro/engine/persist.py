"""The persistent caches: content-addressed, versioned, crash-safe, GC'd.

Two cache layers of the engine are pure functions of content-addressed
inputs, which makes them safe to persist across process restarts:

* the **selector** layer (:class:`SelectorDiskCache`) — the
  :class:`~repro.repairs.counting.PreparedCertificates` of a
  ``(database digest, keys digest, query text, answer)`` key, the most
  expensive per-query state;
* the **decomposition** layer (:class:`DecompositionDiskCache`) — the
  block structure of a ``(database digest, keys digest)`` snapshot, which
  dominates *cold registration* of huge databases.

A pool pointed at the same cache directory answers an unchanged workload
after a restart with **zero** selector *and* decomposition recomputations.

Design notes
------------
* **Keying** — the file name is the SHA-256 of the full key material
  (format version plus the content-addressed inputs).  Nothing is trusted
  from the file name at load time beyond locating the entry; content
  hashes do the addressing.
* **Versioning** — every entry embeds a format version.  Entries written
  by an incompatible version of the library are treated as misses, never
  as errors.
* **Corruption tolerance** — entries carry a checksum over the pickled
  payload.  Truncated, bit-flipped or otherwise unreadable entries are
  counted, deleted best-effort and reported as misses; a damaged cache
  directory can never make a count wrong, only cold.
* **Crash safety** — entries are written to a temporary file and published
  with an atomic :func:`os.replace`, so a crash mid-write leaves either the
  old entry or none, never a torn one.
* **Garbage collection** — :meth:`collect_garbage` bounds the directory by
  entry *age* and entry *count*.  Loading an entry refreshes its mtime, so
  count-bounded eviction drops the least-recently-*used* entries, not
  merely the least-recently-written ones.  Eviction only ever unlinks
  whole entries (the atomic-write discipline means there is nothing
  partial to corrupt), so surviving entries are untouched; an evicted
  entry is a future miss, never an error.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..db.blocks import Block, BlockDecomposition
from ..db.constraints import PrimaryKeySet
from ..db.database import Database
from ..db.facts import Constant
from ..repairs.counting import PreparedCertificates

__all__ = ["SelectorDiskCache", "DecompositionDiskCache"]

#: Bump when the entry layout or the pickled payload types change shape.
FORMAT_VERSION = 1

#: With GC bounds configured, re-check them after this many stores so a
#: long-lived process cannot grow the directory unboundedly between
#: explicit :meth:`collect_garbage` calls.
_COLLECT_EVERY = 64


def _type_tagged(values: Sequence[Constant]) -> str:
    return "\x1e".join(f"{type(value).__name__}:{value!r}" for value in values)


class _ContentAddressedDiskCache:
    """Shared machinery of the on-disk caches (see the module docstring).

    Subclasses fix the four-byte ``_MAGIC``, the entry ``_SUFFIX`` and the
    payload validation hook; this base provides atomic stores, checksum
    verification, lifetime counters and age/count-bounded garbage
    collection.  Thread-unsafe by design (the pool is single-threaded per
    process); multi-process safe in the usual "last atomic write wins"
    sense, which is correct here because every writer computes the same
    pure function.
    """

    _MAGIC: bytes = b"????"
    _SUFFIX: str = ".bin"

    def __init__(
        self,
        directory: Union[str, Path],
        max_entries: Optional[int] = None,
        max_age_seconds: Optional[float] = None,
    ) -> None:
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._max_entries = max_entries
        self._max_age_seconds = max_age_seconds
        self._stores_since_collect = 0
        self.loads = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0
        self.gc_evictions = 0
        if self._bounded:
            self.collect_garbage()

    @property
    def directory(self) -> Path:
        """The directory holding the cache entries."""
        return self._directory

    @property
    def _bounded(self) -> bool:
        return self._max_entries is not None or self._max_age_seconds is not None

    # ------------------------------------------------------------------ #
    # load / store primitives
    # ------------------------------------------------------------------ #
    def _validate_payload(self, value: object) -> bool:
        """Subclass hook: is this unpickled payload of the expected shape?"""
        raise NotImplementedError

    def _load_path(self, path: Path) -> Optional[object]:
        """Return the validated payload at ``path``, or ``None`` on miss."""
        try:
            blob = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        value = self._decode(blob)
        if value is None:
            self.corrupt += 1
            self.misses += 1
            try:  # a corrupt entry is dead weight; removal is best-effort
                path.unlink()
            except OSError:  # pragma: no cover - unlink race / readonly dir
                pass
            return None
        self.loads += 1
        try:  # refresh recency so count-bounded GC evicts cold entries first
            os.utime(path)
        except OSError:  # pragma: no cover - concurrent unlink / readonly dir
            pass
        return value

    def _store_path(self, path: Path, payload_value: object) -> bool:
        """Atomically persist a payload; returns False on I/O failure.

        Persistence failures are deliberately non-fatal: the cache is an
        accelerator, and a full disk must not fail a counting job.
        """
        try:
            payload = pickle.dumps(payload_value, protocol=pickle.HIGHEST_PROTOCOL)
            blob = (
                self._MAGIC
                + FORMAT_VERSION.to_bytes(4, "big")
                + hashlib.sha256(payload).digest()
                + payload
            )
            handle = tempfile.NamedTemporaryFile(
                dir=self._directory, prefix=".tmp-", delete=False
            )
            try:
                with handle:
                    handle.write(blob)
                os.replace(handle.name, path)
            except BaseException:
                try:
                    os.unlink(handle.name)
                except OSError:
                    pass
                raise
        except (OSError, pickle.PicklingError):
            return False
        self.stores += 1
        self._stores_since_collect += 1
        if self._bounded and self._stores_since_collect >= _COLLECT_EVERY:
            self.collect_garbage()
        return True

    def _decode(self, blob: bytes) -> Optional[object]:
        """Validate and unpickle an entry; ``None`` for anything unsound."""
        header_length = len(self._MAGIC) + 4 + 32  # magic + version + checksum
        if len(blob) < header_length or not blob.startswith(self._MAGIC):
            return None
        version = int.from_bytes(blob[4:8], "big")
        if version != FORMAT_VERSION:
            return None
        checksum, payload = blob[8:40], blob[40:]
        if hashlib.sha256(payload).digest() != checksum:
            return None
        try:
            value = pickle.loads(payload)
        except Exception:  # noqa: BLE001 - any unpickling failure is corruption
            return None
        if not self._validate_payload(value):
            return None
        return value

    # ------------------------------------------------------------------ #
    # garbage collection
    # ------------------------------------------------------------------ #
    def collect_garbage(
        self,
        max_entries: Optional[int] = None,
        max_age_seconds: Optional[float] = None,
    ) -> int:
        """Evict entries beyond the age/count bounds; return how many.

        ``max_entries`` keeps at most that many entries, evicting the
        least recently used first (mtime order; loads refresh mtime).
        ``max_age_seconds`` evicts every entry not stored or loaded within
        that window.  Arguments override the bounds configured at
        construction; with neither configured nor passed, nothing is
        evicted.  Eviction unlinks whole entries only — surviving entries
        are byte-for-byte untouched.
        """
        if max_entries is None:
            max_entries = self._max_entries
        if max_age_seconds is None:
            max_age_seconds = self._max_age_seconds
        self._stores_since_collect = 0
        if max_entries is None and max_age_seconds is None:
            return 0

        entries: List[Tuple[float, Path]] = []
        for path in self._directory.glob(f"*{self._SUFFIX}"):
            try:
                entries.append((path.stat().st_mtime, path))
            except OSError:  # pragma: no cover - concurrent unlink
                continue
        entries.sort()  # oldest first

        doomed: List[Path] = []
        if max_age_seconds is not None:
            horizon = time.time() - max_age_seconds
            expired = [entry for entry in entries if entry[0] < horizon]
            doomed.extend(path for _, path in expired)
            entries = entries[len(expired):]
        if max_entries is not None and len(entries) > max_entries:
            excess = len(entries) - max_entries
            doomed.extend(path for _, path in entries[:excess])

        evicted = 0
        for path in doomed:
            try:
                path.unlink()
                evicted += 1
            except OSError:  # pragma: no cover - unlink race / readonly dir
                continue
        self.gc_evictions += evicted
        return evicted

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def entry_count(self) -> int:
        """Number of entries currently on disk."""
        return sum(1 for _ in self._directory.glob(f"*{self._SUFFIX}"))

    def stats(self) -> Dict[str, int]:
        """Lifetime counters plus the current on-disk entry count.

        ``hits`` counts successful loads (the key existed, decoded and
        validated), ``misses`` everything else, ``corrupt`` the subset of
        misses caused by undecodable entries, and ``gc_evictions`` the
        entries removed by :meth:`collect_garbage`.
        """
        return {
            "entries": self.entry_count(),
            "hits": self.loads,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
            "gc_evictions": self.gc_evictions,
        }

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({str(self._directory)!r}, "
            f"loads={self.loads}, stores={self.stores})"
        )


class SelectorDiskCache(_ContentAddressedDiskCache):
    """A directory of :class:`PreparedCertificates` entries keyed by content.

    Example — a stored preparation survives a "restart" (a second cache
    instance over the same directory):

    >>> import tempfile
    >>> from repro.db import Database, PrimaryKeySet, fact
    >>> from repro.query import parse_query
    >>> from repro.repairs import prepare_certificates
    >>> db = Database([fact("R", 1, "a"), fact("R", 1, "b")])
    >>> keys = PrimaryKeySet.from_dict({"R": [1]})
    >>> prepared = prepare_certificates(
    ...     db, keys, parse_query("EXISTS x. R(1, x)"), ())
    >>> directory = tempfile.mkdtemp()
    >>> token = (db.content_digest(), keys.content_digest())
    >>> SelectorDiskCache(directory).store(
    ...     token, "EXISTS x. R(1, x)", (), (), prepared)
    True
    >>> restarted = SelectorDiskCache(directory)
    >>> restarted.load(
    ...     token, "EXISTS x. R(1, x)", (), ()).certificate_count
    2
    """

    _MAGIC = b"RSEL"
    _SUFFIX = ".sel"

    def _validate_payload(self, value: object) -> bool:
        return isinstance(value, PreparedCertificates)

    @staticmethod
    def entry_name(
        snapshot_token: Tuple[str, str],
        query: str,
        answer_variables: Sequence[str],
        answer: Sequence[Constant],
    ) -> str:
        """The content-hash file name of one selector entry."""
        database_digest, keys_digest = snapshot_token
        material = "\x1f".join(
            [
                f"v{FORMAT_VERSION}",
                database_digest,
                keys_digest,
                query,
                ",".join(answer_variables),
                _type_tagged(answer),
            ]
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest() + ".sel"

    def _path_for(
        self,
        snapshot_token: Tuple[str, str],
        query: str,
        answer_variables: Sequence[str],
        answer: Sequence[Constant],
    ) -> Path:
        return self._directory / self.entry_name(
            snapshot_token, query, answer_variables, answer
        )

    def load(
        self,
        snapshot_token: Tuple[str, str],
        query: str,
        answer_variables: Sequence[str],
        answer: Sequence[Constant],
    ) -> Optional[PreparedCertificates]:
        """Return the cached preparation, or ``None`` on miss/corruption."""
        value = self._load_path(
            self._path_for(snapshot_token, query, answer_variables, answer)
        )
        return value  # type: ignore[return-value]

    def store(
        self,
        snapshot_token: Tuple[str, str],
        query: str,
        answer_variables: Sequence[str],
        answer: Sequence[Constant],
        prepared: PreparedCertificates,
    ) -> bool:
        """Persist one preparation atomically; returns False on I/O failure."""
        return self._store_path(
            self._path_for(snapshot_token, query, answer_variables, answer),
            prepared,
        )


class DecompositionDiskCache(_ContentAddressedDiskCache):
    """A directory of block-decomposition entries keyed by snapshot token.

    Only the ordered :class:`~repro.db.blocks.Block` sequence is pickled —
    the database itself is *not* stored.  At load time the caller passes
    the registered (database, keys) pair, and the decomposition is
    rehydrated around it via
    :meth:`~repro.db.blocks.BlockDecomposition.from_blocks`; because the
    entry is addressed by the snapshot token ``(database digest, keys
    digest)``, the stored blocks are the blocks of exactly that pair.

    Example — a decomposition stored once is rebuilt from disk, not
    recomputed:

    >>> import tempfile
    >>> from repro.db import BlockDecomposition, Database, PrimaryKeySet, fact
    >>> db = Database([fact("R", 1, "a"), fact("R", 1, "b"), fact("R", 2, "c")])
    >>> keys = PrimaryKeySet.from_dict({"R": [1]})
    >>> token = (db.content_digest(), keys.content_digest())
    >>> cache = DecompositionDiskCache(tempfile.mkdtemp())
    >>> cache.store(token, BlockDecomposition(db, keys))
    True
    >>> len(cache.load(token, db, keys))
    2
    """

    _MAGIC = b"RDEC"
    _SUFFIX = ".dec"

    def _validate_payload(self, value: object) -> bool:
        return isinstance(value, tuple) and all(
            isinstance(item, Block) for item in value
        )

    @staticmethod
    def entry_name(snapshot_token: Tuple[str, str]) -> str:
        """The content-hash file name of one decomposition entry."""
        database_digest, keys_digest = snapshot_token
        material = "\x1f".join([f"v{FORMAT_VERSION}", database_digest, keys_digest])
        return hashlib.sha256(material.encode("utf-8")).hexdigest() + ".dec"

    def _path_for(self, snapshot_token: Tuple[str, str]) -> Path:
        return self._directory / self.entry_name(snapshot_token)

    def load(
        self,
        snapshot_token: Tuple[str, str],
        database: Database,
        keys: PrimaryKeySet,
    ) -> Optional[BlockDecomposition]:
        """Rehydrate the snapshot's decomposition, or ``None`` on miss."""
        blocks = self._load_path(self._path_for(snapshot_token))
        if blocks is None:
            return None
        return BlockDecomposition.from_blocks(
            database, keys, blocks  # type: ignore[arg-type]
        )

    def store(
        self, snapshot_token: Tuple[str, str], decomposition: BlockDecomposition
    ) -> bool:
        """Persist one decomposition's blocks; returns False on I/O failure."""
        return self._store_path(self._path_for(snapshot_token), decomposition.blocks)
