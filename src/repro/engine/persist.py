"""The persistent selector cache: content-addressed, versioned, crash-safe.

The selector layer is the expensive cache of the engine, and it is a pure
function of ``(database digest, keys digest, query text, answer)`` — all
stable, content-addressed inputs.  That makes it safe to persist across
process restarts: a pool pointed at the same cache directory answers an
unchanged workload with **zero** selector recomputations.

Design notes
------------
* **Keying** — the file name is the SHA-256 of the full key material
  (format version, snapshot digests, query text, answer variables, answer
  tuple with type tags).  Nothing is trusted from the file name at load
  time beyond locating the entry; content hashes do the addressing.
* **Versioning** — every entry embeds a format version.  Entries written
  by an incompatible version of the library are treated as misses, never
  as errors.
* **Corruption tolerance** — entries carry a checksum over the pickled
  payload.  Truncated, bit-flipped or otherwise unreadable entries are
  counted, deleted best-effort and reported as misses; a damaged cache
  directory can never make a count wrong, only cold.
* **Crash safety** — entries are written to a temporary file and published
  with an atomic :func:`os.replace`, so a crash mid-write leaves either the
  old entry or none, never a torn one.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple, Union

from ..db.facts import Constant
from ..repairs.counting import PreparedCertificates

__all__ = ["SelectorDiskCache"]

#: Bump when the entry layout or the pickled payload types change shape.
FORMAT_VERSION = 1

_MAGIC = b"RSEL"
_HEADER_LENGTH = len(_MAGIC) + 4 + 32  # magic + version + payload checksum


def _type_tagged(values: Sequence[Constant]) -> str:
    return "\x1e".join(f"{type(value).__name__}:{value!r}" for value in values)


class SelectorDiskCache:
    """A directory of :class:`PreparedCertificates` entries keyed by content.

    Thread-unsafe by design (the pool is single-threaded per process);
    multi-process safe in the usual "last atomic write wins" sense, which
    is correct here because every writer computes the same pure function.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self.loads = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0

    @property
    def directory(self) -> Path:
        """The directory holding the cache entries."""
        return self._directory

    # ------------------------------------------------------------------ #
    # keying
    # ------------------------------------------------------------------ #
    @staticmethod
    def entry_name(
        snapshot_token: Tuple[str, str],
        query: str,
        answer_variables: Sequence[str],
        answer: Sequence[Constant],
    ) -> str:
        """The content-hash file name of one selector entry."""
        database_digest, keys_digest = snapshot_token
        material = "\x1f".join(
            [
                f"v{FORMAT_VERSION}",
                database_digest,
                keys_digest,
                query,
                ",".join(answer_variables),
                _type_tagged(answer),
            ]
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest() + ".sel"

    def _path_for(
        self,
        snapshot_token: Tuple[str, str],
        query: str,
        answer_variables: Sequence[str],
        answer: Sequence[Constant],
    ) -> Path:
        return self._directory / self.entry_name(
            snapshot_token, query, answer_variables, answer
        )

    # ------------------------------------------------------------------ #
    # load / store
    # ------------------------------------------------------------------ #
    def load(
        self,
        snapshot_token: Tuple[str, str],
        query: str,
        answer_variables: Sequence[str],
        answer: Sequence[Constant],
    ) -> Optional[PreparedCertificates]:
        """Return the cached preparation, or ``None`` on miss/corruption."""
        path = self._path_for(snapshot_token, query, answer_variables, answer)
        try:
            blob = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        value = self._decode(blob)
        if value is None:
            self.corrupt += 1
            self.misses += 1
            try:  # a corrupt entry is dead weight; removal is best-effort
                path.unlink()
            except OSError:  # pragma: no cover - unlink race / readonly dir
                pass
            return None
        self.loads += 1
        return value

    def store(
        self,
        snapshot_token: Tuple[str, str],
        query: str,
        answer_variables: Sequence[str],
        answer: Sequence[Constant],
        prepared: PreparedCertificates,
    ) -> bool:
        """Persist one preparation atomically; returns False on I/O failure.

        Persistence failures are deliberately non-fatal: the cache is an
        accelerator, and a full disk must not fail a counting job.
        """
        path = self._path_for(snapshot_token, query, answer_variables, answer)
        try:
            payload = pickle.dumps(prepared, protocol=pickle.HIGHEST_PROTOCOL)
            blob = (
                _MAGIC
                + FORMAT_VERSION.to_bytes(4, "big")
                + hashlib.sha256(payload).digest()
                + payload
            )
            handle = tempfile.NamedTemporaryFile(
                dir=self._directory, prefix=".tmp-", delete=False
            )
            try:
                with handle:
                    handle.write(blob)
                os.replace(handle.name, path)
            except BaseException:
                try:
                    os.unlink(handle.name)
                except OSError:
                    pass
                raise
        except (OSError, pickle.PicklingError):
            return False
        self.stores += 1
        return True

    @staticmethod
    def _decode(blob: bytes) -> Optional[PreparedCertificates]:
        """Validate and unpickle an entry; ``None`` for anything unsound."""
        if len(blob) < _HEADER_LENGTH or not blob.startswith(_MAGIC):
            return None
        version = int.from_bytes(blob[4:8], "big")
        if version != FORMAT_VERSION:
            return None
        checksum, payload = blob[8:40], blob[40:]
        if hashlib.sha256(payload).digest() != checksum:
            return None
        try:
            value = pickle.loads(payload)
        except Exception:  # noqa: BLE001 - any unpickling failure is corruption
            return None
        if not isinstance(value, PreparedCertificates):
            return None
        return value

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def entry_count(self) -> int:
        """Number of entries currently on disk."""
        return sum(1 for _ in self._directory.glob("*.sel"))

    def stats(self) -> Dict[str, int]:
        """Lifetime counters plus the current on-disk entry count."""
        return {
            "entries": self.entry_count(),
            "loads": self.loads,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
        }

    def __repr__(self) -> str:
        return (
            f"SelectorDiskCache({str(self._directory)!r}, "
            f"loads={self.loads}, stores={self.stores})"
        )
