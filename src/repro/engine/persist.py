"""Deprecated: the persistent caches moved to :mod:`repro.store`.

This module is a thin re-export shim so that existing imports
(``from repro.engine.persist import SelectorDiskCache``) and pickled
worker state written by older code keep working.  New code should import
from :mod:`repro.store`, which additionally provides the pluggable
:class:`~repro.store.backend.StoreBackend` protocol and the snapshot
catalog (:class:`~repro.store.SnapshotCatalog`) this module never had.

The internal base class kept its historical name here
(``_ContentAddressedDiskCache``) and its public one in the new home
(:class:`repro.store.ContentAddressedStore`).
"""

from __future__ import annotations

import warnings

from ..store import (
    FORMAT_VERSION,
    ContentAddressedStore,
    DecompositionDiskCache,
    SelectorDiskCache,
)

warnings.warn(
    "repro.engine.persist is deprecated; import SelectorDiskCache, "
    "DecompositionDiskCache and FORMAT_VERSION from repro.store instead",
    DeprecationWarning,
    stacklevel=2,
)

#: Historical (private) alias of :class:`repro.store.ContentAddressedStore`.
_ContentAddressedDiskCache = ContentAddressedStore

__all__ = ["FORMAT_VERSION", "SelectorDiskCache", "DecompositionDiskCache"]
