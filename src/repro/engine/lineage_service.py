"""The lineage service: history recording, time travel and compaction.

Sits between the snapshot registry (which only knows the *heads*) and the
cache coordinator (which only knows *derived state*): one
:class:`LineageService` owns the in-memory
:class:`~repro.db.lineage.Lineage` chains of every registered name,
records every head move through the snapshot catalog, refreshes the GC
pin set when heads move, materialises ``as_of`` references, performs
rollbacks and adoption — and implements **checkpoint compaction**.

Checkpoints bound the replay cost of deep time travel.  Without them,
materialising an ancestor replays the delta chain all the way from the
held head (or, offline, from the chain origin) — ``O(chain length)``.
A checkpoint persists the *full database* of a chain position through the
store (:class:`~repro.store.SnapshotStore`) and marks the position in the
catalog; :meth:`LineageService.materialise` then hands those positions to
:meth:`Lineage.materialise <repro.db.lineage.Lineage.materialise>`, which
replays from the **closest** source — so resolution is ``O(distance to
the nearest checkpoint)``.  Checkpoints are cut explicitly
(:meth:`checkpoint`) or automatically every ``checkpoint_every``
effective deltas, and a lost or damaged checkpoint entry only ever makes
replay longer, never wrong (replay stays digest-verified).

>>> from repro.db import Database, PrimaryKeySet, fact
>>> from repro.engine.cache_coordinator import CacheCoordinator
>>> from repro.engine.registry import SnapshotRegistry
>>> registry = SnapshotRegistry()
>>> service = LineageService(registry, CacheCoordinator())
>>> db = Database([fact("R", 1, "a")])
>>> keys = PrimaryKeySet.from_dict({"R": [1]})
>>> token, _ = registry.register("live", db, keys)
>>> service.record_head("live", token, kind="register")
>>> [record.kind for record in service.chain("live")]
['register']
"""

from __future__ import annotations

import time
import warnings
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..db.constraints import PrimaryKeySet
from ..db.database import Database
from ..db.delta import Delta
from ..db.lineage import CheckpointRecord, Lineage, LineageRecord, SnapshotRef
from ..errors import EngineError, LineageError
from ..store.tuning import CheckpointDecision, CheckpointPolicy, FixedIntervalPolicy
from .cache_coordinator import CacheCoordinator
from .registry import SnapshotRegistry, SnapshotToken

__all__ = ["LineageService"]


class LineageService:
    """Owns the recorded chains and the checkpoint index of a pool."""

    def __init__(
        self,
        registry: SnapshotRegistry,
        caches: CacheCoordinator,
        checkpoint_every: Optional[int] = None,
        checkpoint_policy: Optional[CheckpointPolicy] = None,
    ) -> None:
        if checkpoint_every is not None and checkpoint_every < 1:
            raise EngineError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        if checkpoint_every is not None and checkpoint_policy is not None:
            raise EngineError(
                "pass checkpoint_every or checkpoint_policy, not both; "
                "checkpoint_every=K is FixedIntervalPolicy(K)"
            )
        self._registry = registry
        self._caches = caches
        self._catalog = caches.catalog
        self._checkpoint_every = checkpoint_every
        self._policy: Optional[CheckpointPolicy] = checkpoint_policy
        if checkpoint_every is not None:
            self._policy = FixedIntervalPolicy(checkpoint_every)
        self._chains: Dict[str, Lineage] = {}
        #: Per name: digest -> checkpoint record (loaded with the chain).
        self._checkpoints: Dict[str, Dict[str, CheckpointRecord]] = {}

    # ------------------------------------------------------------------ #
    # chain access and recording
    # ------------------------------------------------------------------ #
    def chain(self, name: str) -> Lineage:
        """The in-memory chain of ``name``, loading the catalog on first use."""
        chain = self._chains.get(name)
        if chain is None:
            if self._catalog is not None:
                chain = self._catalog.lineage(name)
                self._checkpoints[name] = {
                    record.digest: record
                    for record in self._catalog.checkpoints(name, chain)
                }
            else:
                chain = Lineage(name)
            self._chains.setdefault(name, chain)
        return self._chains[name]

    def lineage(self, name: str) -> Lineage:
        """The recorded chain of a *registered* name (head last)."""
        self._registry.lookup(name)
        return self._chains[name]

    def chain_map(self) -> Dict[str, Lineage]:
        """A shallow copy of the chains (worker-process priming)."""
        return dict(self._chains)

    def record_head(
        self,
        name: str,
        token: SnapshotToken,
        kind: str,
        delta: Optional[Delta] = None,
    ) -> None:
        """Append a lineage record for the new head (and persist it).

        A no-op when the chain already ends at ``token`` — re-registering
        identical content (including every restart against a persisted
        catalog) extends nothing.
        """
        chain = self.chain(name)
        head = chain.head
        if head is not None and (head.digest, head.keys_digest) == token:
            self.refresh_pins()
            return
        record = LineageRecord(
            name=name,
            sequence=len(chain),
            digest=token[0],
            keys_digest=token[1],
            parent_digest=head.digest if head is not None else None,
            kind=kind,
            delta=delta,
            wall_time=time.time(),
        )
        self._chains[name] = chain.append(record)
        if self._catalog is not None:
            self._catalog.append(record)
        self.refresh_pins()

    def refresh_pins(self) -> None:
        """Pin the live snapshot tokens (the lineage heads) against GC.

        Disk-cache garbage collection must never evict entries of the
        *current* snapshot of a registered name — that would force
        recomputation of active state on the next load.
        """
        self._caches.set_pinned_tokens(self._registry.live_tokens())

    def forget(self, name: str) -> None:
        """Release the in-memory chain state of a name that left this pool.

        The source side of an ownership handoff, called after the
        registry entry is gone: the catalog (when persistent) keeps the
        full durable history — the destination, or a later
        re-registration here, reloads it via :meth:`chain` — and the GC
        pin set shrinks to the remaining registered heads.
        """
        self._chains.pop(name, None)
        self._checkpoints.pop(name, None)
        self.refresh_pins()

    def adopt(self, name: str, lineage: Lineage) -> None:
        """Replace the recorded chain of ``name`` with a richer one.

        Worker processes are primed with the parent pool's chains so that
        ``as_of`` references resolve identically in fanned-out runs even
        without a shared catalog.  The chain must belong to ``name`` and
        end at the currently registered snapshot.
        """
        database, keys = self._registry.lookup(name)
        head = lineage.head
        if lineage.name != name or head is None:
            raise EngineError(
                f"cannot adopt a lineage of {lineage.name!r} for {name!r}"
            )
        token = (database.content_digest(), keys.content_digest())
        if (head.digest, head.keys_digest) != token:
            raise EngineError(
                f"adopted lineage of {name!r} ends at {head.digest[:12]}, "
                f"but the registered snapshot is {token[0][:12]}"
            )
        self._chains[name] = lineage

    # ------------------------------------------------------------------ #
    # time travel
    # ------------------------------------------------------------------ #
    def materialise(
        self, name: str, ref: SnapshotRef
    ) -> Tuple[Database, PrimaryKeySet, SnapshotToken]:
        """The (database, keys, token) of a recorded snapshot of ``name``.

        ``ref`` is an ``as_of`` reference (digest, unique ≥8-hex-char
        prefix, or non-positive chain index).  The head resolves without
        work; an ancestor is reconstructed by replaying the recorded
        effective-delta chain from the **closest materialised source** —
        the head or any checkpoint whose snapshot entry loads (see
        :meth:`~repro.db.lineage.Lineage.materialise`) — verified against
        the recorded content digest and cached by token, so repeated
        historical queries replay nothing.
        """
        database, keys = self._registry.lookup(name)
        chain = self.chain(name)
        record = chain.resolve(ref)
        token = (record.digest, record.keys_digest)
        if token == self._registry.token(name):
            return database, keys, token
        if record.keys_digest != keys.content_digest():
            raise LineageError(
                f"snapshot {record.digest[:12]} of {name!r} was recorded "
                f"under different key constraints; its lineage cannot be "
                f"replayed against the current keys"
            )
        loaders = self.checkpoint_loaders(name)
        replay: Dict[str, float] = {}

        def factory() -> Database:
            started = time.perf_counter()
            snapshot = chain.materialise(
                database, record.digest, checkpoints=loaders
            ).freeze()
            replay["elapsed"] = time.perf_counter() - started
            return snapshot

        snapshot = self._caches.materialised(token, factory)
        if self._policy is not None:
            self._observe_read(
                name, chain, record, snapshot, replay.get("elapsed")
            )
        return snapshot, keys, token

    def materialise_range(
        self, name: str, refs: Sequence[SnapshotRef]
    ) -> List[Tuple[Database, PrimaryKeySet, SnapshotToken]]:
        """Resolve many ``as_of`` references of ``name`` in one shared walk.

        The amortised sibling of :meth:`materialise`, same per-reference
        contract (resolution, key-constraint check, digest-verified
        replay, token-keyed caching, tuning-policy observation) but one
        planned route: references the materialised-ancestor cache cannot
        serve are sorted by chain position and handed to
        :meth:`Lineage.materialise_range
        <repro.db.lineage.Lineage.materialise_range>`, which replays the
        chain **once** for all of them.  Each yielded snapshot is fed
        through the cache coordinator (so the token-keyed selector and
        decomposition caches warm exactly as if :meth:`materialise` had
        run) and reported to the checkpoint policy with its marginal
        share of the walk.  Returns ``(database, keys, token)`` triples
        in the order of ``refs``.
        """
        database, keys = self._registry.lookup(name)
        chain = self.chain(name)
        records = [chain.resolve(ref) for ref in refs]
        keys_digest = keys.content_digest()
        head_token = self._registry.token(name)
        resolved: Dict[str, Database] = {}
        missing: Dict[str, LineageRecord] = {}
        for record in records:
            token = (record.digest, record.keys_digest)
            if token == head_token:
                resolved[record.digest] = database
                continue
            if record.keys_digest != keys_digest:
                raise LineageError(
                    f"snapshot {record.digest[:12]} of {name!r} was recorded "
                    f"under different key constraints; its lineage cannot be "
                    f"replayed against the current keys"
                )
            if record.digest in resolved or record.digest in missing:
                continue
            if self._caches.has_materialised(token):
                snapshot = self._caches.materialised(
                    token, lambda: database  # never runs: probed above
                )
                resolved[record.digest] = snapshot
                if self._policy is not None:
                    self._observe_read(name, chain, record, snapshot, None)
            else:
                missing[record.digest] = record
        if missing:
            ordered = sorted(missing.values(), key=lambda record: record.sequence)
            loaders = self.checkpoint_loaders(name)
            started = time.perf_counter()
            for digest, snapshot in chain.materialise_range(
                database,
                [record.digest for record in ordered],
                checkpoints=loaders,
            ):
                snapshot = snapshot.freeze()
                record = missing[digest]
                token = (digest, record.keys_digest)
                snapshot = self._caches.materialised(token, lambda: snapshot)
                resolved[digest] = snapshot
                elapsed = time.perf_counter() - started
                if self._policy is not None:
                    self._observe_read(name, chain, record, snapshot, elapsed)
                started = time.perf_counter()
        return [
            (resolved[record.digest], keys, (record.digest, record.keys_digest))
            for record in records
        ]

    def resolve_range(
        self, name: str, ref_lo: SnapshotRef, ref_hi: SnapshotRef
    ) -> List[LineageRecord]:
        """Every recorded version from ``ref_lo`` to ``ref_hi`` inclusive.

        Both endpoints are ordinary ``as_of`` references; the result
        walks the chain from the first endpoint's position to the
        second's (ascending or descending with the endpoints' order), one
        record per recorded version — the expansion order of
        ``CountJob.as_of_range``.
        """
        self._registry.lookup(name)
        chain = self.chain(name)
        start = chain.resolve(ref_lo)
        end = chain.resolve(ref_hi)
        step = 1 if start.sequence <= end.sequence else -1
        return [
            chain.records[sequence]
            for sequence in range(start.sequence, end.sequence + step, step)
        ]

    def _observe_read(
        self,
        name: str,
        chain: Lineage,
        record: LineageRecord,
        snapshot: Database,
        elapsed: Optional[float],
    ) -> None:
        """Feed one resolved ``as_of`` read to the checkpoint policy.

        ``elapsed`` is ``None`` when the materialised-ancestor cache
        served the read without replaying; the read still counts (a hot
        digest is hot however it was served) with distance/cost zero.
        The policy's decision is executed immediately: promotions are
        honoured only for the digest just materialised (the one database
        this service holds without extra work), demotions for any
        checkpointed digest except the live head.
        """
        head = chain.head
        head_digest = head.digest if head is not None else ""
        distance = 0
        if elapsed is not None:
            distance = (
                chain.replay_distance(
                    head_digest,
                    record.digest,
                    checkpoints=self.checkpoint_loaders(name),
                )
                or 0
            )
        decision = self._policy.after_read(  # type: ignore[union-attr]
            name,
            head_digest,
            record.digest,
            set(self._checkpoints.get(name, {})),
            distance,
            elapsed if elapsed is not None else 0.0,
        )
        if record.digest in decision.promote:
            self.checkpoint_at(name, record, snapshot)
        self._apply_demotions(name, decision)

    def rollback(self, name: str, ref: SnapshotRef) -> LineageRecord:
        """Re-register a recorded ancestor of ``name`` as the head.

        Append-only: the move is recorded as a ``"rollback"`` record and
        the rolled-back-over states remain reachable via ``as_of``.
        Rolling back to the current head is a no-op.  Returns the head
        record.
        """
        snapshot, keys, token = self.materialise(name, ref)
        if token != self._registry.token(name):
            self._registry.set_head(name, snapshot, keys, token)
            self.record_head(name, token, kind="rollback")
        return self._chains[name].head  # type: ignore[return-value]

    # ------------------------------------------------------------------ #
    # checkpoint compaction
    # ------------------------------------------------------------------ #
    def checkpoint(
        self, name: str, compact: bool = False
    ) -> Optional[CheckpointRecord]:
        """Persist the current head of ``name`` as a checkpoint.

        Stores the full database through the snapshot store and marks the
        chain position in the catalog; future deep ``as_of`` replays (in
        this or any later process) start here instead of walking the whole
        chain.  Idempotent on an already-checkpointed head.  Returns the
        checkpoint record, or ``None`` when the snapshot could not be
        persisted (store I/O failures are non-fatal by contract).

        ``compact=True`` additionally **releases the delta payloads** of
        every record at or below the newest checkpointed position (see
        :meth:`compact`).  Off by default and loud when used: compaction
        trades time-travel reach for space.
        """
        database, keys = self._registry.lookup(name)
        if not self._caches.has_snapshot_store:
            raise EngineError(
                "checkpoints need a persistent store; construct the pool "
                "with persist_dir=..."
            )
        token = self._registry.token(name)
        chain = self.chain(name)
        head = chain.head
        if head is None or (head.digest, head.keys_digest) != token:
            raise EngineError(
                f"the chain of {name!r} does not end at the registered "
                f"snapshot; cannot checkpoint"
            )
        existing = self._checkpoints.get(name, {}).get(head.digest)
        if (
            existing is not None
            and existing.sequence == head.sequence
            and self._caches.has_checkpoint(existing.token)
        ):
            # Idempotent only while the marker names the *current* head
            # position (a rollback can revisit a checkpointed digest at a
            # new sequence — that position gets its own marker) and the
            # snapshot payload still exists — an entry GC'd while the
            # head was elsewhere must be re-stored, not silently trusted.
            # The existence probe is cheap (no load); a present-but-
            # damaged entry is demoted at load time and re-storable then.
            if compact:
                self.compact(name)
            return existing
        if not self._caches.store_checkpoint(token, database):
            return None
        record = CheckpointRecord(
            name=name,
            sequence=head.sequence,
            digest=head.digest,
            keys_digest=head.keys_digest,
            wall_time=time.time(),
        )
        if self._catalog is not None:
            self._catalog.record_checkpoint(record)
        self._checkpoints.setdefault(name, {})[record.digest] = record
        self._observe_checkpoint_bytes(name, record)
        if compact:
            self.compact(name)
        return record

    def checkpoint_at(
        self, name: str, record: LineageRecord, database: Database
    ) -> Optional[CheckpointRecord]:
        """Persist a *non-head* chain position as a checkpoint.

        The adaptive-placement path: the lineage service just replayed
        ``record``'s snapshot for an ``as_of`` read and the policy judged
        the position worth keeping materialised, so the database is in
        hand and checkpointing it costs one store, no replay.  Same
        idempotency and failure contract as :meth:`checkpoint`.
        """
        if not self._caches.has_snapshot_store:
            return None
        token = (record.digest, record.keys_digest)
        existing = self._checkpoints.get(name, {}).get(record.digest)
        if (
            existing is not None
            and existing.sequence == record.sequence
            and self._caches.has_checkpoint(existing.token)
        ):
            return existing
        if not self._caches.store_checkpoint(token, database):
            return None
        marker = CheckpointRecord(
            name=name,
            sequence=record.sequence,
            digest=record.digest,
            keys_digest=record.keys_digest,
            wall_time=time.time(),
        )
        if self._catalog is not None:
            self._catalog.record_checkpoint(marker)
        self._checkpoints.setdefault(name, {})[marker.digest] = marker
        self._observe_checkpoint_bytes(name, marker)
        return marker

    def demote_checkpoint(self, name: str, digest: str) -> bool:
        """Drop one checkpoint: snapshot entry, catalog marker, index entry.

        The inverse of :meth:`checkpoint_at`, used when a checkpoint's
        observed read rate no longer earns its bytes.  The live head is
        never demoted (its entries are pinned anyway), and lineage
        records are untouched — replays of the digest fall back to the
        next closest source, slower but still digest-verified.
        """
        chain = self.chain(name)
        head = chain.head
        if head is not None and head.digest == digest:
            return False
        marker = self._checkpoints.get(name, {}).pop(digest, None)
        if marker is None:
            return False
        if self._catalog is not None:
            self._catalog.remove_checkpoint(name, marker.sequence)
        self._caches.drop_checkpoint(marker.token)
        return True

    def _apply_demotions(self, name: str, decision: CheckpointDecision) -> None:
        for digest in decision.demote:
            self.demote_checkpoint(name, digest)

    def _observe_checkpoint_bytes(
        self, name: str, record: CheckpointRecord
    ) -> None:
        """Feed the stored entry size back to a byte-aware policy."""
        observe = getattr(self._policy, "observe_snapshot_bytes", None)
        if observe is None:
            return
        size = self._caches.checkpoint_bytes(record.token)
        if size is not None:
            observe(name, size)

    def compact(self, name: str) -> int:
        """Release the delta payloads covered by the newest checkpoint.

        Every ``"delta"`` record at or below the newest checkpointed
        sequence has its payload dropped — rewritten in place (in memory
        and, when persistent, in the catalog) as a *compacted* record
        that keeps the digests, the kind and the inserted/deleted fact
        counts, but can no longer be replayed through.  Checkpointed
        digests stay materialisable from their snapshot entries; every
        other digest below the checkpoint becomes unreachable and a
        later ``as_of`` against it fails loudly.  Returns how many
        records were compacted, warning (loudly, once per call) when any
        were — compaction is an explicit space-for-auditability trade.
        """
        chain = self.chain(name)
        markers = self._checkpoints.get(name, {})
        if not markers:
            return 0
        horizon = max(marker.sequence for marker in markers.values())
        compacted = []
        records = list(chain.records)
        for index, record in enumerate(records):
            if (
                record.sequence <= horizon
                and record.kind == "delta"
                and record.delta is not None
            ):
                records[index] = record.compact()
                compacted.append(records[index])
        if not compacted:
            return 0
        self._chains[name] = Lineage(name, tuple(records))
        if self._catalog is not None:
            for record in compacted:
                self._catalog.append(record)
        warnings.warn(
            f"compacted {len(compacted)} delta record(s) of {name!r} at or "
            f"below sequence {horizon}; ancestors reachable only through "
            f"them can no longer be materialised",
            stacklevel=2,
        )
        return len(compacted)

    def maybe_checkpoint(self, name: str) -> Optional[CheckpointRecord]:
        """Consult the checkpoint policy after one recorded delta.

        With ``checkpoint_every=K`` (i.e. a
        :class:`~repro.store.FixedIntervalPolicy`) this cuts a head
        checkpoint once ``K`` effective deltas have accumulated past the
        newest checkpointed position — the behaviour the interval always
        had.  An adaptive policy typically declines here (placement is
        read-driven) but may demote decayed checkpoints.  Inert without
        a policy or a store.
        """
        if self._policy is None or not self._caches.has_snapshot_store:
            return None
        chain = self.chain(name)
        checkpointed = {
            record.sequence for record in self._checkpoints.get(name, {}).values()
        }
        decision = self._policy.after_delta(
            name,
            tuple(record.kind for record in chain.records),
            checkpointed,
        )
        self._apply_demotions(name, decision)
        if decision.checkpoint_head:
            return self.checkpoint(name)
        return None

    def checkpoints(self, name: str) -> Tuple[CheckpointRecord, ...]:
        """The known checkpoints of ``name``, oldest chain position first."""
        self._registry.lookup(name)
        self.chain(name)
        return tuple(
            sorted(
                self._checkpoints.get(name, {}).values(),
                key=lambda record: record.sequence,
            )
        )

    def checkpoint_loaders(
        self, name: str
    ) -> Dict[str, Callable[[], Optional[Database]]]:
        """Lazy digest -> database loaders for the name's checkpoints."""
        return {
            digest: (lambda token=record.token: self._caches.load_checkpoint(token))
            for digest, record in self._checkpoints.get(name, {}).items()
        }

    def __repr__(self) -> str:
        return (
            f"LineageService(chains={list(self._chains)!r}, "
            f"checkpoint_every={self._checkpoint_every})"
        )
