"""The lineage service: history recording, time travel and compaction.

Sits between the snapshot registry (which only knows the *heads*) and the
cache coordinator (which only knows *derived state*): one
:class:`LineageService` owns the in-memory
:class:`~repro.db.lineage.Lineage` chains of every registered name,
records every head move through the snapshot catalog, refreshes the GC
pin set when heads move, materialises ``as_of`` references, performs
rollbacks and adoption — and implements **checkpoint compaction**.

Checkpoints bound the replay cost of deep time travel.  Without them,
materialising an ancestor replays the delta chain all the way from the
held head (or, offline, from the chain origin) — ``O(chain length)``.
A checkpoint persists the *full database* of a chain position through the
store (:class:`~repro.store.SnapshotStore`) and marks the position in the
catalog; :meth:`LineageService.materialise` then hands those positions to
:meth:`Lineage.materialise <repro.db.lineage.Lineage.materialise>`, which
replays from the **closest** source — so resolution is ``O(distance to
the nearest checkpoint)``.  Checkpoints are cut explicitly
(:meth:`checkpoint`) or automatically every ``checkpoint_every``
effective deltas, and a lost or damaged checkpoint entry only ever makes
replay longer, never wrong (replay stays digest-verified).

>>> from repro.db import Database, PrimaryKeySet, fact
>>> from repro.engine.cache_coordinator import CacheCoordinator
>>> from repro.engine.registry import SnapshotRegistry
>>> registry = SnapshotRegistry()
>>> service = LineageService(registry, CacheCoordinator())
>>> db = Database([fact("R", 1, "a")])
>>> keys = PrimaryKeySet.from_dict({"R": [1]})
>>> token, _ = registry.register("live", db, keys)
>>> service.record_head("live", token, kind="register")
>>> [record.kind for record in service.chain("live")]
['register']
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Tuple

from ..db.constraints import PrimaryKeySet
from ..db.database import Database
from ..db.delta import Delta
from ..db.lineage import CheckpointRecord, Lineage, LineageRecord, SnapshotRef
from ..errors import EngineError, LineageError
from .cache_coordinator import CacheCoordinator
from .registry import SnapshotRegistry, SnapshotToken

__all__ = ["LineageService"]


class LineageService:
    """Owns the recorded chains and the checkpoint index of a pool."""

    def __init__(
        self,
        registry: SnapshotRegistry,
        caches: CacheCoordinator,
        checkpoint_every: Optional[int] = None,
    ) -> None:
        if checkpoint_every is not None and checkpoint_every < 1:
            raise EngineError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        self._registry = registry
        self._caches = caches
        self._catalog = caches.catalog
        self._checkpoint_every = checkpoint_every
        self._chains: Dict[str, Lineage] = {}
        #: Per name: digest -> checkpoint record (loaded with the chain).
        self._checkpoints: Dict[str, Dict[str, CheckpointRecord]] = {}

    # ------------------------------------------------------------------ #
    # chain access and recording
    # ------------------------------------------------------------------ #
    def chain(self, name: str) -> Lineage:
        """The in-memory chain of ``name``, loading the catalog on first use."""
        chain = self._chains.get(name)
        if chain is None:
            if self._catalog is not None:
                chain = self._catalog.lineage(name)
                self._checkpoints[name] = {
                    record.digest: record
                    for record in self._catalog.checkpoints(name, chain)
                }
            else:
                chain = Lineage(name)
            self._chains.setdefault(name, chain)
        return self._chains[name]

    def lineage(self, name: str) -> Lineage:
        """The recorded chain of a *registered* name (head last)."""
        self._registry.lookup(name)
        return self._chains[name]

    def chain_map(self) -> Dict[str, Lineage]:
        """A shallow copy of the chains (worker-process priming)."""
        return dict(self._chains)

    def record_head(
        self,
        name: str,
        token: SnapshotToken,
        kind: str,
        delta: Optional[Delta] = None,
    ) -> None:
        """Append a lineage record for the new head (and persist it).

        A no-op when the chain already ends at ``token`` — re-registering
        identical content (including every restart against a persisted
        catalog) extends nothing.
        """
        chain = self.chain(name)
        head = chain.head
        if head is not None and (head.digest, head.keys_digest) == token:
            self.refresh_pins()
            return
        record = LineageRecord(
            name=name,
            sequence=len(chain),
            digest=token[0],
            keys_digest=token[1],
            parent_digest=head.digest if head is not None else None,
            kind=kind,
            delta=delta,
            wall_time=time.time(),
        )
        self._chains[name] = chain.append(record)
        if self._catalog is not None:
            self._catalog.append(record)
        self.refresh_pins()

    def refresh_pins(self) -> None:
        """Pin the live snapshot tokens (the lineage heads) against GC.

        Disk-cache garbage collection must never evict entries of the
        *current* snapshot of a registered name — that would force
        recomputation of active state on the next load.
        """
        self._caches.set_pinned_tokens(self._registry.live_tokens())

    def forget(self, name: str) -> None:
        """Release the in-memory chain state of a name that left this pool.

        The source side of an ownership handoff, called after the
        registry entry is gone: the catalog (when persistent) keeps the
        full durable history — the destination, or a later
        re-registration here, reloads it via :meth:`chain` — and the GC
        pin set shrinks to the remaining registered heads.
        """
        self._chains.pop(name, None)
        self._checkpoints.pop(name, None)
        self.refresh_pins()

    def adopt(self, name: str, lineage: Lineage) -> None:
        """Replace the recorded chain of ``name`` with a richer one.

        Worker processes are primed with the parent pool's chains so that
        ``as_of`` references resolve identically in fanned-out runs even
        without a shared catalog.  The chain must belong to ``name`` and
        end at the currently registered snapshot.
        """
        database, keys = self._registry.lookup(name)
        head = lineage.head
        if lineage.name != name or head is None:
            raise EngineError(
                f"cannot adopt a lineage of {lineage.name!r} for {name!r}"
            )
        token = (database.content_digest(), keys.content_digest())
        if (head.digest, head.keys_digest) != token:
            raise EngineError(
                f"adopted lineage of {name!r} ends at {head.digest[:12]}, "
                f"but the registered snapshot is {token[0][:12]}"
            )
        self._chains[name] = lineage

    # ------------------------------------------------------------------ #
    # time travel
    # ------------------------------------------------------------------ #
    def materialise(
        self, name: str, ref: SnapshotRef
    ) -> Tuple[Database, PrimaryKeySet, SnapshotToken]:
        """The (database, keys, token) of a recorded snapshot of ``name``.

        ``ref`` is an ``as_of`` reference (digest, unique ≥8-hex-char
        prefix, or non-positive chain index).  The head resolves without
        work; an ancestor is reconstructed by replaying the recorded
        effective-delta chain from the **closest materialised source** —
        the head or any checkpoint whose snapshot entry loads (see
        :meth:`~repro.db.lineage.Lineage.materialise`) — verified against
        the recorded content digest and cached by token, so repeated
        historical queries replay nothing.
        """
        database, keys = self._registry.lookup(name)
        chain = self.chain(name)
        record = chain.resolve(ref)
        token = (record.digest, record.keys_digest)
        if token == self._registry.token(name):
            return database, keys, token
        if record.keys_digest != keys.content_digest():
            raise LineageError(
                f"snapshot {record.digest[:12]} of {name!r} was recorded "
                f"under different key constraints; its lineage cannot be "
                f"replayed against the current keys"
            )
        loaders = self.checkpoint_loaders(name)
        snapshot = self._caches.materialised(
            token,
            lambda: chain.materialise(
                database, record.digest, checkpoints=loaders
            ).freeze(),
        )
        return snapshot, keys, token

    def rollback(self, name: str, ref: SnapshotRef) -> LineageRecord:
        """Re-register a recorded ancestor of ``name`` as the head.

        Append-only: the move is recorded as a ``"rollback"`` record and
        the rolled-back-over states remain reachable via ``as_of``.
        Rolling back to the current head is a no-op.  Returns the head
        record.
        """
        snapshot, keys, token = self.materialise(name, ref)
        if token != self._registry.token(name):
            self._registry.set_head(name, snapshot, keys, token)
            self.record_head(name, token, kind="rollback")
        return self._chains[name].head  # type: ignore[return-value]

    # ------------------------------------------------------------------ #
    # checkpoint compaction
    # ------------------------------------------------------------------ #
    def checkpoint(self, name: str) -> Optional[CheckpointRecord]:
        """Persist the current head of ``name`` as a checkpoint.

        Stores the full database through the snapshot store and marks the
        chain position in the catalog; future deep ``as_of`` replays (in
        this or any later process) start here instead of walking the whole
        chain.  Idempotent on an already-checkpointed head.  Returns the
        checkpoint record, or ``None`` when the snapshot could not be
        persisted (store I/O failures are non-fatal by contract).
        """
        database, keys = self._registry.lookup(name)
        if not self._caches.has_snapshot_store:
            raise EngineError(
                "checkpoints need a persistent store; construct the pool "
                "with persist_dir=..."
            )
        token = self._registry.token(name)
        chain = self.chain(name)
        head = chain.head
        if head is None or (head.digest, head.keys_digest) != token:
            raise EngineError(
                f"the chain of {name!r} does not end at the registered "
                f"snapshot; cannot checkpoint"
            )
        existing = self._checkpoints.get(name, {}).get(head.digest)
        if (
            existing is not None
            and existing.sequence == head.sequence
            and self._caches.has_checkpoint(existing.token)
        ):
            # Idempotent only while the marker names the *current* head
            # position (a rollback can revisit a checkpointed digest at a
            # new sequence — that position gets its own marker) and the
            # snapshot payload still exists — an entry GC'd while the
            # head was elsewhere must be re-stored, not silently trusted.
            # The existence probe is cheap (no load); a present-but-
            # damaged entry is demoted at load time and re-storable then.
            return existing
        if not self._caches.store_checkpoint(token, database):
            return None
        record = CheckpointRecord(
            name=name,
            sequence=head.sequence,
            digest=head.digest,
            keys_digest=head.keys_digest,
            wall_time=time.time(),
        )
        if self._catalog is not None:
            self._catalog.record_checkpoint(record)
        self._checkpoints.setdefault(name, {})[record.digest] = record
        return record

    def maybe_checkpoint(self, name: str) -> Optional[CheckpointRecord]:
        """Cut an automatic checkpoint when the compaction interval is due.

        Called after every recorded delta: counts the *trailing run* of
        effective-delta records — stopping at the newest checkpointed
        position or at any non-delta record (a rollback or
        re-registration restarts the count: its head is previously
        recorded content, not ``K`` fresh deltas of drift) — and
        checkpoints the new head once ``checkpoint_every`` of them have
        accumulated.  Inert without a configured interval or a store.
        """
        if self._checkpoint_every is None or not self._caches.has_snapshot_store:
            return None
        chain = self.chain(name)
        checkpointed = {
            record.sequence for record in self._checkpoints.get(name, {}).values()
        }
        pending = 0
        for record in reversed(chain.records):
            if record.sequence in checkpointed or record.kind != "delta":
                break
            pending += 1
        if pending >= self._checkpoint_every:
            return self.checkpoint(name)
        return None

    def checkpoints(self, name: str) -> Tuple[CheckpointRecord, ...]:
        """The known checkpoints of ``name``, oldest chain position first."""
        self._registry.lookup(name)
        self.chain(name)
        return tuple(
            sorted(
                self._checkpoints.get(name, {}).values(),
                key=lambda record: record.sequence,
            )
        )

    def checkpoint_loaders(
        self, name: str
    ) -> Dict[str, Callable[[], Optional[Database]]]:
        """Lazy digest -> database loaders for the name's checkpoints."""
        return {
            digest: (lambda token=record.token: self._caches.load_checkpoint(token))
            for digest, record in self._checkpoints.get(name, {}).items()
        }

    def __repr__(self) -> str:
        return (
            f"LineageService(chains={list(self._chains)!r}, "
            f"checkpoint_every={self._checkpoint_every})"
        )
