"""Batch job descriptions and reports.

A :class:`CountJob` is one (database, query, method) request expressed in
primitive, JSON-able data: the database is referenced by the name it was
registered under in the :class:`~repro.engine.pool.SolverPool` and the
query is carried as text in the CLI's formula syntax (formula plus
answer-variable names).  Keeping jobs textual makes them trivially
picklable for worker processes, diffable in job files and stable across
processes — the engine guarantees that a pooled run is bit-identical to a
sequential one precisely because a job fully determines its computation
(including the random seed of the randomised estimators).

A :class:`JobResult` pairs the job with its count and with execution
provenance (timing, which cache layers were hit, which worker ran it); a
:class:`BatchReport` aggregates the results of one ``SolverPool.run`` call.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..db.delta import Delta
from ..db.facts import Constant
from ..errors import BatchSpecError

__all__ = [
    "BATCH_METHODS",
    "CACHE_LAYERS",
    "CountJob",
    "UpdateJob",
    "UpdateReport",
    "JobResult",
    "BatchReport",
    "aggregate_cache_stats",
]

#: Every method a job may request (exact strategies plus the randomised ones).
BATCH_METHODS = (
    "auto",
    "naive",
    "certificate",
    "inclusion-exclusion",
    "enumeration",
    "fpras",
    "karp-luby",
)

#: The cache layers a job may hit, in report order.  ``selectors-disk`` and
#: ``decomposition-disk`` record hits served from the persistent on-disk
#: caches (no in-memory entry, but no recomputation either); ``exact``
#: records anytime jobs answered from a completed refine-to-exact
#: continuation (the served count is exact, with zero sampling).
CACHE_LAYERS = (
    "query",
    "decomposition",
    "decomposition-disk",
    "selectors",
    "selectors-disk",
    "exact",
)


@dataclass(frozen=True)
class CountJob:
    """One #CQA request against a registered database.

    Attributes
    ----------
    database:
        Name the target database was registered under in the pool.
    query:
        The query formula in the textual syntax of
        :func:`repro.query.parser.parse_query`.
    answer_variables:
        Names of the answer variables (empty for a Boolean query).
    answer:
        Candidate answer tuple for non-Boolean queries.
    method:
        One of :data:`BATCH_METHODS`.
    epsilon, delta:
        Accuracy/confidence of the randomised methods (ignored by exact ones).
    seed:
        Seed of the randomised methods.  ``None`` derives a deterministic
        per-job seed from the job's content and position, so batches are
        reproducible (and pooled runs bit-identical to sequential ones)
        even when no seed is given.
    as_of:
        Optional *time-travel* reference: count against a historical
        snapshot of the database instead of its head.  Either a recorded
        content digest (or a unique prefix of at least 8 hex characters)
        or a non-positive chain index (``-2`` = two versions ago, ``0`` =
        the head).  The pool materialises the ancestor by replaying the
        recorded delta chain and serves it through the ordinary
        snapshot-token caches; an unknown reference raises
        :class:`~repro.errors.LineageError` at execution time.
    as_of_range:
        Optional *range* time-travel reference: a ``(ref_lo, ref_hi)``
        pair of ``as_of``-style references (digests, unique prefixes or
        non-positive chain indices).  The engine expands the job into one
        per-version ``as_of`` job for every recorded version from
        ``ref_lo`` to ``ref_hi`` inclusive (in chain order between the
        two endpoints) and resolves the whole group through one shared
        replay walk — bit-identical to writing the per-version jobs by
        hand, but ``O(chain length)`` instead of ``O(N × chain length)``
        delta applications.  Mutually exclusive with ``as_of``.
    label:
        Free-form tag carried through to the result (e.g. a scenario name).
    max_latency, max_error, anytime:
        The accuracy–latency SLA knobs of the randomised methods (a
        :class:`~repro.errors.BatchSpecError` on exact ones).  Any of
        them routes the job through the chunked anytime estimator:
        ``max_latency`` bounds the sampling wall-clock (seconds),
        ``max_error`` stops once the calibrated interval is relatively
        tight enough, and ``anytime=True`` alone runs the full budget
        while still reporting the interval trace.  None of the three
        enters the derived seed, so an anytime job running to full
        budget is bit-identical to the plain job.

    >>> job = CountJob(database="hr", query="EXISTS x. R(1, x)", method="fpras")
    >>> job.is_randomised
    True
    >>> CountJob.from_json(job.to_json()) == job
    True
    >>> CountJob(database="hr", query="EXISTS x. R(1, x)", seed=7).effective_seed(3)
    7
    """

    database: str
    query: str
    answer_variables: Tuple[str, ...] = ()
    answer: Tuple[Constant, ...] = ()
    method: str = "auto"
    epsilon: float = 0.1
    delta: float = 0.05
    seed: Optional[int] = None
    as_of: Optional[Union[str, int]] = None
    as_of_range: Optional[Tuple[Union[str, int], Union[str, int]]] = None
    label: Optional[str] = None
    max_latency: Optional[float] = None
    max_error: Optional[float] = None
    anytime: bool = False

    def __post_init__(self) -> None:
        if not self.database or not isinstance(self.database, str):
            raise BatchSpecError("a job must name a registered database")
        if not self.query or not isinstance(self.query, str):
            raise BatchSpecError("a job must carry a textual query")
        if self.method not in BATCH_METHODS:
            raise BatchSpecError(
                f"unknown method {self.method!r}; expected one of {BATCH_METHODS}"
            )
        if self.as_of is not None:
            self._check_snapshot_ref("as_of", self.as_of)
        if self.as_of_range is not None:
            if self.as_of is not None:
                raise BatchSpecError(
                    "as_of and as_of_range are mutually exclusive; a range "
                    "job names its endpoints only"
                )
            if isinstance(self.as_of_range, str) or not isinstance(
                self.as_of_range, Sequence
            ) or len(self.as_of_range) != 2:
                raise BatchSpecError(
                    f"as_of_range must be a (ref_lo, ref_hi) pair, "
                    f"got {self.as_of_range!r}"
                )
            for endpoint in self.as_of_range:
                self._check_snapshot_ref("as_of_range", endpoint)
            object.__setattr__(self, "as_of_range", tuple(self.as_of_range))
        for knob, value in (
            ("max_latency", self.max_latency),
            ("max_error", self.max_error),
        ):
            if value is not None:
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    raise BatchSpecError(f"{knob} must be a number, got {value!r}")
                if value <= 0:
                    raise BatchSpecError(f"{knob} must be positive, got {value}")
        if not isinstance(self.anytime, bool):
            raise BatchSpecError(
                f"anytime must be a boolean, got {self.anytime!r}"
            )
        if self.has_sla and not self.is_randomised:
            raise BatchSpecError(
                f"max_latency/max_error/anytime only apply to the "
                f"randomised methods ('fpras', 'karp-luby'), "
                f"got method {self.method!r}"
            )
        object.__setattr__(self, "answer_variables", tuple(self.answer_variables))
        object.__setattr__(self, "answer", tuple(self.answer))

    @staticmethod
    def _check_snapshot_ref(field_name: str, ref: object) -> None:
        """Validate one ``as_of``-style snapshot reference."""
        if isinstance(ref, bool) or not isinstance(ref, (str, int)):
            raise BatchSpecError(
                f"{field_name} must be a digest string or a chain index, "
                f"got {ref!r}"
            )
        if isinstance(ref, int) and ref > 0:
            raise BatchSpecError(
                f"{field_name} chain indices count back from the head and "
                f"must be <= 0, got {ref}"
            )
        if isinstance(ref, str) and len(ref) < 8:
            raise BatchSpecError(
                f"{field_name} digest references need at least 8 characters, "
                f"got {ref!r}"
            )

    @property
    def is_randomised(self) -> bool:
        """True iff the job runs an estimator rather than an exact counter."""
        return self.method in ("fpras", "karp-luby")

    @property
    def has_sla(self) -> bool:
        """True iff any anytime knob routes this job through the driver."""
        return (
            self.anytime
            or self.max_latency is not None
            or self.max_error is not None
        )

    def effective_seed(self, index: int) -> int:
        """The seed actually used for this job at position ``index``.

        Explicit seeds win; otherwise the seed is a CRC of the job's
        content plus its batch position — stable across processes (CRC32,
        unlike :func:`hash`, is not salted) so sequential and pooled runs
        draw identical sample sequences.
        """
        if self.seed is not None:
            return self.seed
        token = "\x1f".join(
            [
                self.database,
                self.query,
                ",".join(self.answer_variables),
                repr(self.answer),
                self.method,
                repr(self.epsilon),
                repr(self.delta),
                str(index),
            ]
        )
        # ``as_of`` is deliberately *not* part of the seed material: a
        # historical job must draw the same samples as the identical job
        # served when its snapshot was the head, which is what makes
        # time-travel estimates bit-identical to registering the ancestor
        # fresh (asserted in benchmark E16).
        return zlib.crc32(token.encode("utf-8"))

    def to_json(self) -> Dict[str, object]:
        """The job as a JSON-able dict (inverse of :meth:`from_json`)."""
        payload: Dict[str, object] = {
            "database": self.database,
            "query": self.query,
            "method": self.method,
        }
        if self.answer_variables:
            payload["answer_variables"] = list(self.answer_variables)
        if self.answer:
            payload["answer"] = list(self.answer)
        if self.is_randomised:
            payload["epsilon"] = self.epsilon
            payload["delta"] = self.delta
        if self.seed is not None:
            payload["seed"] = self.seed
        if self.as_of is not None:
            payload["as_of"] = self.as_of
        if self.as_of_range is not None:
            payload["as_of_range"] = list(self.as_of_range)
        if self.label is not None:
            payload["label"] = self.label
        if self.max_latency is not None:
            payload["max_latency"] = self.max_latency
        if self.max_error is not None:
            payload["max_error"] = self.max_error
        if self.anytime:
            payload["anytime"] = self.anytime
        return payload

    @classmethod
    def from_json(cls, payload: Mapping[str, object]) -> "CountJob":
        """Build a job from a JSON mapping, validating types and fields."""
        if not isinstance(payload, Mapping):
            raise BatchSpecError(f"a job must be a JSON object, got {type(payload).__name__}")
        known = {
            "database",
            "query",
            "answer_variables",
            "answer",
            "method",
            "epsilon",
            "delta",
            "seed",
            "as_of",
            "as_of_range",
            "label",
            "max_latency",
            "max_error",
            "anytime",
        }
        unknown = set(payload) - known
        if unknown:
            raise BatchSpecError(f"unknown job fields: {sorted(unknown)}")
        missing = {"database", "query"} - set(payload)
        if missing:
            raise BatchSpecError(f"a job requires fields: {sorted(missing)}")
        answer_variables = payload.get("answer_variables", ())
        answer = payload.get("answer", ())
        if isinstance(answer_variables, str) or not isinstance(answer_variables, Sequence):
            raise BatchSpecError("answer_variables must be a list of names")
        if isinstance(answer, str) or not isinstance(answer, Sequence):
            raise BatchSpecError("answer must be a list of constants")
        try:
            epsilon = float(payload.get("epsilon", 0.1))
            delta = float(payload.get("delta", 0.05))
        except (TypeError, ValueError) as exc:
            raise BatchSpecError(f"epsilon/delta must be numbers: {exc}") from exc
        seed = payload.get("seed")
        if seed is not None and not isinstance(seed, int):
            raise BatchSpecError(f"seed must be an integer, got {seed!r}")
        sla: Dict[str, object] = {}
        for knob in ("max_latency", "max_error"):
            value = payload.get(knob)
            if value is not None:
                try:
                    sla[knob] = float(value)  # type: ignore[arg-type]
                except (TypeError, ValueError) as exc:
                    raise BatchSpecError(f"{knob} must be a number: {exc}") from exc
        anytime = payload.get("anytime", False)
        if not isinstance(anytime, bool):
            raise BatchSpecError(f"anytime must be a boolean, got {anytime!r}")
        as_of_range = payload.get("as_of_range")
        if as_of_range is not None:
            if isinstance(as_of_range, str) or not isinstance(
                as_of_range, Sequence
            ):
                raise BatchSpecError(
                    f"as_of_range must be a [ref_lo, ref_hi] pair, "
                    f"got {as_of_range!r}"
                )
            as_of_range = tuple(as_of_range)
        return cls(
            database=payload["database"],  # type: ignore[arg-type]
            query=payload["query"],  # type: ignore[arg-type]
            answer_variables=tuple(str(name) for name in answer_variables),
            answer=tuple(answer),
            method=str(payload.get("method", "auto")),
            epsilon=epsilon,
            delta=delta,
            seed=seed,
            as_of=payload.get("as_of"),  # type: ignore[arg-type]
            as_of_range=as_of_range,  # type: ignore[arg-type]
            label=payload.get("label"),  # type: ignore[arg-type]
            max_latency=sla.get("max_latency"),  # type: ignore[arg-type]
            max_error=sla.get("max_error"),  # type: ignore[arg-type]
            anytime=anytime,
        )


@dataclass(frozen=True)
class UpdateJob:
    """One delta applied to a registered database, as a stream element.

    Update jobs interleave with :class:`CountJob` entries in batch streams
    (and in ``repro batch`` job files): all counts before the update see the
    old snapshot, all counts after it see the new one.  The JSON shape is
    ``{"update": "<name>", "insert": [...], "delete": [...]}`` with facts in
    the database JSON format.

    >>> from repro.db import Delta, fact
    >>> update = UpdateJob(database="hr", delta=Delta(inserted=[fact("R", 1, "a")]))
    >>> UpdateJob.from_json(update.to_json()) == update
    True
    """

    database: str
    delta: Delta
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.database or not isinstance(self.database, str):
            raise BatchSpecError("an update must name a registered database")
        if not isinstance(self.delta, Delta):
            raise BatchSpecError(
                f"an update needs a Delta, got {type(self.delta).__name__}"
            )

    def to_json(self) -> Dict[str, object]:
        """The update as a JSON-able dict (inverse of :meth:`from_json`)."""
        payload: Dict[str, object] = {"update": self.database}
        payload.update(self.delta.to_json())
        if self.label is not None:
            payload["label"] = self.label
        return payload

    @classmethod
    def from_json(cls, payload: Mapping[str, object]) -> "UpdateJob":
        """Build an update job from its JSON mapping."""
        if not isinstance(payload, Mapping) or "update" not in payload:
            raise BatchSpecError("an update entry must carry an 'update' field")
        unknown = set(payload) - {"update", "insert", "delete", "label"}
        if unknown:
            raise BatchSpecError(f"unknown update fields: {sorted(unknown)}")
        delta = Delta.from_json(
            {
                key: payload[key]
                for key in ("insert", "delete")
                if key in payload
            }
        )
        return cls(
            database=str(payload["update"]),
            delta=delta,
            label=payload.get("label"),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class UpdateReport:
    """What one :meth:`~repro.engine.SolverPool.apply_delta` call did.

    The selector counters are the provenance of delta invalidation: of the
    entries cached for the pre-delta snapshot, ``selectors_dropped`` had to
    be recomputed (the delta touched their blocks or could create new
    certificates), ``selectors_migrated`` were remapped to the new snapshot
    without recomputation, and ``selectors_kept`` belonged to other
    snapshots and were left alone.
    """

    database: str
    old_digest: str
    new_digest: str
    inserted: int
    deleted: int
    touched_blocks: int
    blocks_before: int
    blocks_after: int
    selectors_kept: int
    selectors_migrated: int
    selectors_dropped: int
    elapsed: float
    index: Optional[int] = None
    label: Optional[str] = None

    def to_json(self) -> Dict[str, object]:
        """The report as a JSON-able dict (part of the batch CLI output)."""
        payload: Dict[str, object] = {
            "database": self.database,
            "old_digest": self.old_digest,
            "new_digest": self.new_digest,
            "inserted": self.inserted,
            "deleted": self.deleted,
            "touched_blocks": self.touched_blocks,
            "blocks_before": self.blocks_before,
            "blocks_after": self.blocks_after,
            "selectors": {
                "kept": self.selectors_kept,
                "migrated": self.selectors_migrated,
                "dropped": self.selectors_dropped,
            },
            "elapsed": self.elapsed,
        }
        if self.index is not None:
            payload["index"] = self.index
        if self.label is not None:
            payload["label"] = self.label
        return payload


@dataclass(frozen=True)
class JobResult:
    """The outcome of one job, with execution provenance.

    ``count_fields`` is the deterministic payload (what must be
    bit-identical between sequential and pooled runs); ``elapsed``,
    ``cache_hits``/``cache_misses`` and ``worker`` are provenance and may
    legitimately differ between runs.

    Anytime jobs additionally carry their confidence interval
    (``interval_low``/``interval_high``), the number of samples actually
    drawn, the ``stop_reason`` (one of ``"budget"``, ``"latency"``,
    ``"error"`` — or ``"exact"`` when a refine-to-exact continuation
    served the count) and whether the interval was conformally
    ``calibrated``.  All five stay ``None``/``False`` for plain jobs so
    existing report shapes are untouched.
    """

    index: int
    job: CountJob
    satisfying: float
    total: int
    method: str
    is_estimate: bool
    elapsed: float
    cache_hits: Tuple[str, ...] = ()
    cache_misses: Tuple[str, ...] = ()
    worker: str = "sequential"
    interval_low: Optional[float] = None
    interval_high: Optional[float] = None
    samples: Optional[int] = None
    stop_reason: Optional[str] = None
    calibrated: bool = False

    def count_fields(self) -> Tuple[int, float, int, str, bool]:
        """The deterministic part of the result, for equivalence checks."""
        return (self.index, self.satisfying, self.total, self.method, self.is_estimate)

    @property
    def frequency(self) -> float:
        """Relative frequency of the answer (estimated iff the count is)."""
        if self.total == 0:
            return 0.0
        return self.satisfying / self.total

    def to_json(self) -> Dict[str, object]:
        """The result as a JSON-able dict (counts, provenance and the job)."""
        payload: Dict[str, object] = {
            "index": self.index,
            "job": self.job.to_json(),
            "satisfying": self.satisfying,
            "total": self.total,
            "method": self.method,
            "is_estimate": self.is_estimate,
            "frequency": self.frequency,
            "elapsed": self.elapsed,
            "cache_hits": list(self.cache_hits),
            "cache_misses": list(self.cache_misses),
            "worker": self.worker,
        }
        if self.interval_low is not None and self.interval_high is not None:
            payload["interval"] = {
                "low": self.interval_low,
                "high": self.interval_high,
                "calibrated": self.calibrated,
            }
        if self.samples is not None:
            payload["samples"] = self.samples
        if self.stop_reason is not None:
            payload["stop_reason"] = self.stop_reason
        return payload


@dataclass(frozen=True)
class BatchReport:
    """Aggregate outcome of one ``SolverPool.run``/``run_stream`` call.

    ``updates`` holds the :class:`UpdateReport` of every delta that was
    interleaved with the counting jobs (empty for plain ``run`` batches).
    """

    results: Tuple[JobResult, ...]
    elapsed: float
    workers: int
    cache_stats: Dict[str, Dict[str, int]] = field(default_factory=dict)
    updates: Tuple[UpdateReport, ...] = ()

    def __len__(self) -> int:
        return len(self.results)

    @property
    def jobs_per_second(self) -> float:
        """Throughput of the run (0 when the batch was empty or instant)."""
        if self.elapsed <= 0:
            return 0.0
        return len(self.results) / self.elapsed

    def counts(self) -> List[Tuple[int, float, int, str, bool]]:
        """Deterministic per-job payloads, for cross-run comparison."""
        return [result.count_fields() for result in self.results]

    def to_json(self) -> Dict[str, object]:
        """The report as a JSON-able dict (the CLI's output format)."""
        payload: Dict[str, object] = {
            "jobs": [result.to_json() for result in self.results],
            "summary": {
                "jobs": len(self.results),
                "elapsed": self.elapsed,
                "jobs_per_second": self.jobs_per_second,
                "workers": self.workers,
                "cache": self.cache_stats,
            },
        }
        if self.updates:
            payload["updates"] = [update.to_json() for update in self.updates]
            payload["summary"]["updates"] = len(self.updates)  # type: ignore[index]
        return payload


def aggregate_cache_stats(results: Sequence[JobResult]) -> Dict[str, Dict[str, int]]:
    """Per-layer hit/miss totals across a result set.

    Derived from the per-job provenance rather than from the caches
    themselves so the aggregation works identically for sequential runs
    (one shared cache) and pooled runs (one cache per worker process).
    """
    stats = {layer: {"hits": 0, "misses": 0} for layer in CACHE_LAYERS}
    for result in results:
        for layer in result.cache_hits:
            stats[layer]["hits"] += 1
        for layer in result.cache_misses:
            stats[layer]["misses"] += 1
    return stats
