"""Relative frequency of answers over repairs.

Section 1.1 motivates the whole paper: the certain-answer semantics of CQA
is too coarse ("in all repairs" vs "in some repair"), and what one really
wants is *how often* a tuple is an answer — its relative frequency, the
number of repairs entailing it divided by the total number of repairs.  In
the Employee example the query "do employees 1 and 2 work in the same
department?" has relative frequency 1/2.

This module computes relative frequencies — exactly (via the counters of
:mod:`repro.repairs.counting`) for single tuples and for the full answer
ranking of a non-Boolean query.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..db.blocks import BlockDecomposition
from ..db.constraints import PrimaryKeySet
from ..db.database import Database
from ..db.facts import Constant
from ..query.ast import Query
from ..query.evaluation import answers as evaluate_answers
from .counting import CountReport, count_repairs_satisfying

__all__ = ["AnswerFrequency", "relative_frequency", "answer_frequencies", "certain_answers", "possible_answers"]


@dataclass(frozen=True)
class AnswerFrequency:
    """One candidate answer with its exact frequency over the repairs."""

    answer: Tuple[Constant, ...]
    satisfying: int
    total: int

    @property
    def frequency(self) -> Fraction:
        """The exact relative frequency as a fraction."""
        if self.total == 0:
            return Fraction(0)
        return Fraction(self.satisfying, self.total)

    @property
    def is_certain(self) -> bool:
        """True iff every repair entails the answer (classical certain answer)."""
        return self.total > 0 and self.satisfying == self.total

    @property
    def is_possible(self) -> bool:
        """True iff at least one repair entails the answer."""
        return self.satisfying > 0

    def __str__(self) -> str:
        rendered = ", ".join(map(repr, self.answer)) if self.answer else "()"
        return f"{rendered}: {self.satisfying}/{self.total} = {float(self.frequency):.4f}"


def relative_frequency(
    database: Database,
    keys: PrimaryKeySet,
    query: Query,
    answer: Sequence[Constant] = (),
    method: str = "auto",
) -> Fraction:
    """Exact relative frequency of ``answer`` for ``query`` over the repairs."""
    report = count_repairs_satisfying(database, keys, query, answer, method=method)
    if report.total == 0:
        return Fraction(0)
    return Fraction(report.satisfying, report.total)


def _candidate_answers(
    database: Database, query: Query
) -> List[Tuple[Constant, ...]]:
    """Candidate answers: tuples in ``Q(D)`` (answers over the whole database).

    For monotone (existential positive) queries every answer of every repair
    is an answer over ``D``, so restricting candidates to ``Q(D)`` is
    complete; for non-monotone queries we fall back to the full domain
    product, which is exact but only feasible for small arities/domains.
    """
    from ..query.classify import is_existential_positive

    if query.arity == 0:
        return [()]
    if is_existential_positive(query):
        return sorted(evaluate_answers(query, database), key=lambda item: tuple(map(str, item)))
    import itertools

    domain = database.active_domain_sorted()
    return list(itertools.product(domain, repeat=query.arity))


def answer_frequencies(
    database: Database,
    keys: PrimaryKeySet,
    query: Query,
    method: str = "auto",
    decomposition: Optional[BlockDecomposition] = None,
) -> List[AnswerFrequency]:
    """Exact frequency of every candidate answer, sorted by decreasing frequency.

    This realises the "relative frequency of a tuple" semantics of
    Section 1.1 as a ranking, which is what the HR-analytics example and
    benchmark E12 exercise end-to-end.
    """
    if decomposition is None:
        decomposition = BlockDecomposition(database, keys)
    results: List[AnswerFrequency] = []
    for answer in _candidate_answers(database, query):
        report = count_repairs_satisfying(
            database, keys, query, answer, method=method, decomposition=decomposition
        )
        results.append(AnswerFrequency(tuple(answer), report.satisfying, report.total))
    results.sort(key=lambda item: (-item.frequency, tuple(map(str, item.answer))))
    return results


def certain_answers(
    database: Database,
    keys: PrimaryKeySet,
    query: Query,
    method: str = "auto",
) -> List[Tuple[Constant, ...]]:
    """The classical certain answers: tuples entailed by every repair."""
    return [
        item.answer
        for item in answer_frequencies(database, keys, query, method=method)
        if item.is_certain
    ]


def possible_answers(
    database: Database,
    keys: PrimaryKeySet,
    query: Query,
    method: str = "auto",
) -> List[Tuple[Constant, ...]]:
    """The possible answers: tuples entailed by at least one repair."""
    return [
        item.answer
        for item in answer_frequencies(database, keys, query, method=method)
        if item.is_possible
    ]
