"""Repair enumeration, counting and sampling.

Under primary keys, a repair of ``(D, Σ)`` keeps exactly one fact from each
block of the block decomposition, so:

* the total number of repairs is the product of the block sizes — the
  "easy" counting problem the paper notes is in FP,
* repairs can be enumerated as the cartesian product of the blocks,
* a uniformly random repair can be drawn by picking one fact uniformly and
  independently per block — which is exactly the sampling primitive the
  FPRAS of Theorem 6.2 builds on.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterator, Optional, Sequence, Union

from ..db.blocks import BlockDecomposition
from ..db.constraints import PrimaryKeySet
from ..db.database import Database

__all__ = [
    "count_total_repairs",
    "enumerate_repairs",
    "sample_repair",
    "sample_repair_choices",
    "is_repair",
]


def _decomposition(
    database: Database, keys: PrimaryKeySet, decomposition: Optional[BlockDecomposition]
) -> BlockDecomposition:
    if decomposition is not None:
        return decomposition
    return BlockDecomposition(database, keys)


def count_total_repairs(
    database: Database,
    keys: PrimaryKeySet,
    decomposition: Optional[BlockDecomposition] = None,
) -> int:
    """``|rep(D, Σ)|``: the total number of repairs (product of block sizes).

    Runs in time linear in the database; this is the denominator of the
    relative-frequency semantics of Section 1.1.
    """
    return _decomposition(database, keys, decomposition).total_repairs()


def enumerate_repairs(
    database: Database,
    keys: PrimaryKeySet,
    decomposition: Optional[BlockDecomposition] = None,
    limit: Optional[int] = None,
) -> Iterator[Database]:
    """Enumerate the repairs of ``(D, Σ)`` in the canonical block order.

    The number of repairs is exponential in the number of conflicting
    blocks; ``limit`` caps the enumeration for exploratory use.  The
    enumeration order is deterministic: choices advance lexicographically
    over the block sequence ``B1 ≺ ... ≺ Bn``.
    """
    blocks = _decomposition(database, keys, decomposition)
    produced = 0
    for choices in itertools.product(*(range(len(block)) for block in blocks)):
        if limit is not None and produced >= limit:
            return
        produced += 1
        yield blocks.repair_from_choices(choices)


def sample_repair_choices(
    decomposition: BlockDecomposition, rng: random.Random
) -> Sequence[int]:
    """Draw the choice vector of a uniformly random repair."""
    return [rng.randrange(len(block)) for block in decomposition.blocks]


def sample_repair(
    database: Database,
    keys: PrimaryKeySet,
    rng: Optional[Union[random.Random, int]] = None,
    decomposition: Optional[BlockDecomposition] = None,
) -> Database:
    """Draw one repair uniformly at random.

    ``rng`` may be a :class:`random.Random` instance or an integer seed; by
    default a fresh unseeded generator is used.
    """
    if isinstance(rng, int):
        rng = random.Random(rng)
    elif rng is None:
        rng = random.Random()
    blocks = _decomposition(database, keys, decomposition)
    return blocks.repair_from_choices(sample_repair_choices(blocks, rng))


def is_repair(
    candidate: Database,
    database: Database,
    keys: PrimaryKeySet,
    decomposition: Optional[BlockDecomposition] = None,
) -> bool:
    """True iff ``candidate`` is a repair of ``(D, Σ)``.

    Checks the characterisation "exactly one fact per block", which is
    equivalent to being a maximal consistent subset of ``D``.
    """
    blocks = _decomposition(database, keys, decomposition)
    return blocks.is_repair(candidate)
