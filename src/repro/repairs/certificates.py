"""Certificates for #CQA: the small witnesses of the guess–check–expand view.

A certificate for "some repair of ``(D, Σ)`` entails the UCQ ``Q``" is a
pair ``(Q', h)`` where ``Q'`` is a disjunct of ``Q`` and ``h`` maps the
variables of ``Q'`` into ``dom(D)`` such that ``h(Q') ⊆ D`` and
``h(Q') |= Σ`` (Lemma 3.5 / Section 4.1).  Certificates are "small" — their
size depends only on the fixed query — which is what makes the decision
problem easy and what the Λ-hierarchy machinery is built around.

This module computes certificates and their induced selectors over the
block decomposition, in a form directly consumable by the exact counters
and by the FPRAS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple, Union

from ..db.blocks import BlockDecomposition
from ..db.constraints import PrimaryKeySet
from ..db.database import Database
from ..db.facts import Fact
from ..errors import FragmentError
from ..query.ast import Query, Variable
from ..query.evaluation import Assignment
from ..query.homomorphism import find_homomorphisms, homomorphism_image
from ..query.rewriting import UCQ, to_ucq
from ..lams.selectors import Selector

__all__ = ["Certificate", "iter_certificates", "certificate_selectors", "ensure_boolean_ucq"]


@dataclass(frozen=True)
class Certificate:
    """A valid certificate ``(Q', h)`` together with its image ``h(Q')``.

    Attributes
    ----------
    disjunct_index:
        Index of the disjunct ``Q'`` within the UCQ.
    assignment:
        The homomorphism ``h`` as a sorted tuple of (variable, constant)
        pairs (tuples keep the certificate hashable).
    image:
        The set of facts ``h(Q')`` — always a Σ-consistent subset of ``D``.
    """

    disjunct_index: int
    assignment: Tuple[Tuple[Variable, object], ...]
    image: FrozenSet[Fact]

    def assignment_dict(self) -> Assignment:
        """The homomorphism as a dictionary."""
        return dict(self.assignment)

    def __str__(self) -> str:
        bindings = ", ".join(f"{variable}={value!r}" for variable, value in self.assignment)
        return f"cert(disjunct={self.disjunct_index}, {{{bindings}}})"


def ensure_boolean_ucq(query: Union[Query, UCQ]) -> UCQ:
    """Rewrite ``query`` to UCQ form and insist that it is Boolean.

    The counting machinery works on Boolean queries; non-Boolean queries
    are handled by binding an answer tuple first (see
    :func:`repro.repairs.counting.bind_answer`).
    """
    ucq = query if isinstance(query, UCQ) else to_ucq(query)
    if not ucq.is_boolean:
        raise FragmentError(
            "a Boolean query is required here; bind the candidate answer "
            "tuple first (repro.repairs.counting.bind_answer) or use the "
            "top-level CQASolver which does this for you"
        )
    return ucq


def iter_certificates(
    database: Database,
    keys: PrimaryKeySet,
    query: Union[Query, UCQ],
) -> Iterator[Certificate]:
    """Enumerate all valid certificates of ``(D, Σ, Q)``.

    The enumeration searches homomorphisms disjunct by disjunct and filters
    out those whose image violates ``Σ`` (two image facts in the same block).
    """
    ucq = ensure_boolean_ucq(query)
    for disjunct_index, disjunct in enumerate(ucq.disjuncts):
        if disjunct.always_true:
            # The TRUE disjunct is witnessed by the empty homomorphism.
            yield Certificate(disjunct_index, (), frozenset())
            continue
        for assignment in find_homomorphisms(disjunct.atoms, database):
            image = homomorphism_image(disjunct.atoms, assignment)
            if keys.is_consistent(image):
                yield Certificate(
                    disjunct_index,
                    tuple(sorted(assignment.items(), key=lambda item: item[0].name)),
                    frozenset(image),
                )


def certificate_selectors(
    certificates: Sequence[Certificate],
    decomposition: BlockDecomposition,
    keys: PrimaryKeySet,
) -> List[Selector]:
    """Convert certificates to selectors over the block decomposition.

    A certificate's selector pins block ``B_i`` to the fact ``R(t̄)`` iff
    the certificate's image intersects ``B_i`` in exactly that fact and the
    relation ``R`` has a key in ``Σ`` — the rule of Algorithm 2.  Facts of
    un-keyed relations sit in singleton blocks, so leaving them un-pinned
    does not change the unfolding (the "free" choice has a single option).
    """
    selectors: List[Selector] = []
    for certificate in certificates:
        pins: Dict[int, int] = {}
        for fact_ in certificate.image:
            if not keys.has_key(fact_.relation):
                continue
            block_index = decomposition.block_index_of(fact_)
            pins[block_index] = decomposition[block_index].index_of(fact_)
        selectors.append(Selector(pins))
    return selectors
