"""The decision problem #CQA>0: is the query entailed by at least one repair?

The complexity of the decision version is what separates the two regimes of
the paper:

* for existential positive queries it is in **L** (Theorem 3.4): by
  Lemma 3.5, some repair entails ``Q`` iff some disjunct ``Q_i`` has a
  homomorphism ``h`` with ``h(Q_i) ⊆ D`` and ``h(Q_i) |= Σ`` — i.e. iff a
  valid certificate exists.  Crucially this never looks at repairs at all.
* for arbitrary first-order queries it is **NP-complete** (Theorem 3.2):
  the natural algorithm guesses a repair and checks it, and no certificate
  shortcut exists (under standard assumptions).

Both procedures are implemented here; the ∃FO+ one is the workhorse, and
the FO one doubles as a brute-force oracle for tests.
"""

from __future__ import annotations

from typing import Optional, Union

from ..db.blocks import BlockDecomposition
from ..db.constraints import PrimaryKeySet
from ..db.database import Database
from ..query.ast import Query
from ..query.classify import is_existential_positive
from ..query.evaluation import holds
from ..query.rewriting import UCQ
from .certificates import iter_certificates
from .enumeration import enumerate_repairs

__all__ = ["has_entailing_repair", "has_entailing_repair_bruteforce", "decide"]


def has_entailing_repair(
    database: Database,
    keys: PrimaryKeySet,
    query: Union[Query, UCQ],
) -> bool:
    """Decide #CQA>0 for an existential positive query via Lemma 3.5.

    Returns True iff a valid certificate exists.  Only certificate search
    is performed — no repair is ever materialised — which is what makes the
    problem "easy to decide" and the whole Λ-hierarchy analysis meaningful.
    """
    for _certificate in iter_certificates(database, keys, query):
        return True
    return False


def has_entailing_repair_bruteforce(
    database: Database,
    keys: PrimaryKeySet,
    query: Query,
    decomposition: Optional[BlockDecomposition] = None,
) -> bool:
    """Decide #CQA>0 for an arbitrary FO query by enumerating repairs.

    This is the guess-and-check procedure behind the NP upper bound of
    Theorem 3.2, realised deterministically; exponential in the number of
    conflicting blocks, so use only on small databases (tests, oracles).
    """
    for repair in enumerate_repairs(database, keys, decomposition=decomposition):
        if holds(query, repair):
            return True
    return False


def decide(
    database: Database,
    keys: PrimaryKeySet,
    query: Union[Query, UCQ],
) -> bool:
    """Decide #CQA>0 choosing the right procedure for the query fragment.

    ∃FO+ queries (and pre-rewritten UCQs) use the certificate procedure;
    anything else falls back to repair enumeration.
    """
    if isinstance(query, UCQ) or is_existential_positive(query):
        return has_entailing_repair(database, keys, query)
    return has_entailing_repair_bruteforce(database, keys, query)
