"""Exact algorithms for #CQA: counting the repairs that entail a query.

Three exact strategies are provided, mirroring the complexity analysis of
the paper:

``naive``
    Enumerate every repair and evaluate the query on each.  Works for any
    first-order query (this is the only exact option for full FO, whose
    counting problem is #P-complete under parsimonious reductions,
    Theorem 3.3), but its cost is the total number of repairs —
    exponential in the number of conflicting blocks.

``certificate`` (a.k.a. union-of-boxes)
    Only for existential positive queries.  Compute the valid certificates
    ``(Q', h)``, convert each to a box over the block decomposition, and
    count the union of boxes exactly with the decomposed engine of
    :mod:`repro.lams.union_of_boxes`.  The cost is driven by the number of
    certificates and the size of the blocks they touch, not by the total
    number of repairs; for queries of bounded keywidth on realistic
    databases this is exponentially faster than ``naive``.

``inclusion-exclusion`` / ``enumeration``
    The two base strategies of the union-of-boxes engine, exposed for
    benchmarking the ablation (E3); ``certificate`` chooses between them
    per connected component automatically.

The front door is :func:`count_repairs_satisfying`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

from ..db.blocks import BlockDecomposition
from ..db.constraints import PrimaryKeySet
from ..db.database import Database
from ..db.facts import Constant
from ..errors import FragmentError
from ..query.ast import Query
from ..query.classify import is_existential_positive
from ..query.evaluation import holds
from ..query.rewriting import UCQ, to_ucq
from ..query.substitution import bind_answer
from ..lams.selectors import Selector
from ..lams.union_of_boxes import count_union_of_boxes
from .certificates import certificate_selectors, iter_certificates
from .enumeration import count_total_repairs, enumerate_repairs

__all__ = [
    "CountReport",
    "PreparedCertificates",
    "prepare_certificates",
    "count_from_selectors",
    "count_repairs_satisfying",
    "count_repairs_satisfying_naive",
    "count_repairs_satisfying_certificates",
    "bind_answer",
]

#: Methods accepted by :func:`count_repairs_satisfying`.
_EXACT_METHODS = ("auto", "naive", "certificate", "inclusion-exclusion", "enumeration")


@dataclass(frozen=True)
class CountReport:
    """The result of an exact #CQA computation, with provenance.

    Attributes
    ----------
    satisfying:
        Number of repairs entailing the query (the value of #CQA).
    total:
        Total number of repairs ``|rep(D, Σ)|``.
    method:
        The strategy that produced the count.
    certificates:
        Number of valid certificates found (``None`` for the naive method,
        which does not compute them).
    blocks:
        Number of blocks in the decomposition.
    """

    satisfying: int
    total: int
    method: str
    certificates: Optional[int]
    blocks: int

    @property
    def relative_frequency(self) -> float:
        """The relative frequency of the answer: satisfying / total."""
        if self.total == 0:
            return 0.0
        return self.satisfying / self.total


def _prepare_boolean_query(
    query: Union[Query, UCQ], answer: Sequence[Constant]
) -> Union[Query, UCQ]:
    """Bind the answer tuple (if any) and return a Boolean query/UCQ."""
    if isinstance(query, UCQ):
        if answer:
            raise FragmentError(
                "binding an answer tuple to an already-rewritten UCQ is not "
                "supported; bind the Query first, then rewrite"
            )
        return query
    if query.arity:
        return bind_answer(query, answer)
    if answer:
        raise FragmentError("a Boolean query takes no answer tuple")
    return query


def count_repairs_satisfying_naive(
    database: Database,
    keys: PrimaryKeySet,
    query: Query,
    answer: Sequence[Constant] = (),
    decomposition: Optional[BlockDecomposition] = None,
) -> int:
    """Exact #CQA by enumerating repairs; correct for any FO query."""
    bound = _prepare_boolean_query(query, answer)
    if isinstance(bound, UCQ):
        raise FragmentError("the naive counter expects a Query, not a UCQ")
    if decomposition is None:
        decomposition = BlockDecomposition(database, keys)
    count = 0
    for repair in enumerate_repairs(database, keys, decomposition=decomposition):
        if holds(bound, repair):
            count += 1
    return count


@dataclass(frozen=True)
class PreparedCertificates:
    """The query-dependent, repair-independent half of a certificate count.

    Computing an exact certificate-based count factors into two stages: a
    *preparation* stage (rewrite the bound query to a UCQ, enumerate its
    valid certificates and convert them to selectors over the block
    decomposition) and a pure *counting kernel* over ``(block sizes,
    selectors)``.  The preparation depends only on ``(D, Σ, Q, answer)`` and
    is therefore cacheable and shareable across repeated counts — the batch
    engine (:mod:`repro.engine`) memoises exactly this object.  It is
    immutable and picklable, so it can also be shipped to worker processes.

    Attributes
    ----------
    ucq:
        The Boolean UCQ rewriting of the (answer-bound) query.
    selectors:
        The certificate selectors over the block decomposition.
    certificate_count:
        The number of valid certificates found.
    """

    ucq: UCQ
    selectors: Tuple[Selector, ...]
    certificate_count: int


def prepare_certificates(
    database: Database,
    keys: PrimaryKeySet,
    query: Union[Query, UCQ],
    answer: Sequence[Constant] = (),
    decomposition: Optional[BlockDecomposition] = None,
) -> PreparedCertificates:
    """Compute the cacheable certificate/selector state for ``(D, Σ, Q, ā)``.

    Only valid for existential positive queries (the certificate machinery
    is what makes the fragment tractable); raises :class:`FragmentError`
    otherwise.
    """
    bound = _prepare_boolean_query(query, answer)
    if isinstance(bound, Query):
        if not is_existential_positive(bound):
            raise FragmentError(
                "the certificate-based counter requires an existential "
                "positive query; use method='naive' for arbitrary FO queries"
            )
        ucq = to_ucq(bound)
    else:
        ucq = bound
    if decomposition is None:
        decomposition = BlockDecomposition(database, keys)
    certificates = list(iter_certificates(database, keys, ucq))
    selectors = tuple(certificate_selectors(certificates, decomposition, keys))
    return PreparedCertificates(ucq, selectors, len(certificates))


def count_from_selectors(
    block_sizes: Sequence[int],
    selectors: Sequence[Selector],
    box_method: str = "decomposed",
    map_fn: Optional[Callable[..., Iterable[int]]] = None,
) -> int:
    """The pure counting kernel: |⋃ boxes| over the block decomposition.

    Takes only primitive, picklable data (sizes and selectors), so worker
    processes can run it without a database, a solver or a query in scope.
    """
    return count_union_of_boxes(block_sizes, selectors, method=box_method, map_fn=map_fn)


def count_repairs_satisfying_certificates(
    database: Database,
    keys: PrimaryKeySet,
    query: Union[Query, UCQ],
    answer: Sequence[Constant] = (),
    decomposition: Optional[BlockDecomposition] = None,
    box_method: str = "decomposed",
    prepared: Optional[PreparedCertificates] = None,
    map_fn: Optional[Callable[..., Iterable[int]]] = None,
) -> Tuple[int, int]:
    """Exact #CQA via certificates and union-of-boxes counting.

    Returns the pair ``(satisfying, number_of_certificates)``.  Only valid
    for existential positive queries.  ``prepared`` short-circuits the
    certificate/selector computation with a cached
    :class:`PreparedCertificates`; ``map_fn`` parallelises the decomposed
    union count across connected components.
    """
    if decomposition is None:
        decomposition = BlockDecomposition(database, keys)
    if prepared is None:
        prepared = prepare_certificates(
            database, keys, query, answer, decomposition=decomposition
        )
    if prepared.certificate_count == 0:
        return 0, 0
    satisfying = count_from_selectors(
        decomposition.block_sizes(), prepared.selectors, box_method, map_fn=map_fn
    )
    return satisfying, prepared.certificate_count


def count_repairs_satisfying(
    database: Database,
    keys: PrimaryKeySet,
    query: Union[Query, UCQ],
    answer: Sequence[Constant] = (),
    method: str = "auto",
    decomposition: Optional[BlockDecomposition] = None,
    prepared: Optional[PreparedCertificates] = None,
    map_fn: Optional[Callable[..., Iterable[int]]] = None,
) -> CountReport:
    """Exact #CQA with method selection; the module's front door.

    Parameters
    ----------
    database, keys:
        The inconsistent database ``D`` and the primary keys ``Σ``.
    query:
        A first-order query (or pre-rewritten UCQ).
    answer:
        Candidate answer tuple for non-Boolean queries; empty for Boolean.
    method:
        ``"auto"`` (default) picks the certificate counter for ∃FO+ queries
        and falls back to ``"naive"`` otherwise.  The remaining values force
        a specific strategy: ``"naive"``, ``"certificate"``,
        ``"inclusion-exclusion"``, ``"enumeration"``.
    decomposition:
        An existing block decomposition to reuse (optional).
    prepared:
        Cached :class:`PreparedCertificates` to reuse (certificate-family
        methods only; the naive counter ignores it).
    map_fn:
        Optional parallel map over connected components (decomposed counts).
    """
    if method not in _EXACT_METHODS:
        raise ValueError(
            f"unknown method {method!r}; expected one of {_EXACT_METHODS}"
        )
    if decomposition is None:
        decomposition = BlockDecomposition(database, keys)
    total = count_total_repairs(database, keys, decomposition=decomposition)

    is_positive = isinstance(query, UCQ) or is_existential_positive(
        _prepare_boolean_query(query, answer) if not isinstance(query, UCQ) else query
    )

    if method == "naive" or (method == "auto" and not is_positive):
        if isinstance(query, UCQ):
            raise FragmentError("the naive counter expects a Query, not a UCQ")
        satisfying = count_repairs_satisfying_naive(
            database, keys, query, answer, decomposition=decomposition
        )
        return CountReport(satisfying, total, "naive", None, len(decomposition))

    box_method = {
        "auto": "decomposed",
        "certificate": "decomposed",
        "inclusion-exclusion": "inclusion-exclusion",
        "enumeration": "enumeration",
    }[method]
    satisfying, certificate_count = count_repairs_satisfying_certificates(
        database,
        keys,
        query,
        answer,
        decomposition=decomposition,
        box_method=box_method,
        prepared=prepared,
        map_fn=map_fn,
    )
    label = "certificate" if method == "auto" else method
    return CountReport(satisfying, total, label, certificate_count, len(decomposition))
