"""Repair machinery: enumeration, certificates, decision, exact counting.

The operational core of the paper's problem ``#CQA(Q, Σ)``: everything
needed to enumerate, count and sample the repairs of an inconsistent
database under primary keys and to count the repairs entailing a query.
"""

from .certificates import Certificate, certificate_selectors, ensure_boolean_ucq, iter_certificates
from .counting import (
    CountReport,
    PreparedCertificates,
    bind_answer,
    count_from_selectors,
    count_repairs_satisfying,
    count_repairs_satisfying_certificates,
    count_repairs_satisfying_naive,
    prepare_certificates,
)
from .decision import decide, has_entailing_repair, has_entailing_repair_bruteforce
from .enumeration import (
    count_total_repairs,
    enumerate_repairs,
    is_repair,
    sample_repair,
    sample_repair_choices,
)
from .frequency import (
    AnswerFrequency,
    answer_frequencies,
    certain_answers,
    possible_answers,
    relative_frequency,
)

__all__ = [
    "AnswerFrequency",
    "Certificate",
    "CountReport",
    "PreparedCertificates",
    "answer_frequencies",
    "bind_answer",
    "certain_answers",
    "certificate_selectors",
    "count_from_selectors",
    "count_repairs_satisfying",
    "count_repairs_satisfying_certificates",
    "count_repairs_satisfying_naive",
    "count_total_repairs",
    "decide",
    "ensure_boolean_ucq",
    "enumerate_repairs",
    "has_entailing_repair",
    "has_entailing_repair_bruteforce",
    "is_repair",
    "iter_certificates",
    "possible_answers",
    "prepare_certificates",
    "relative_frequency",
    "sample_repair",
    "sample_repair_choices",
]
