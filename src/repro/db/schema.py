"""Relational schemas.

A schema, in the sense of Section 2.1 of the paper, is a finite set of
relation symbols with associated arities.  This module adds the small amount
of extra structure a practical library needs on top of that: optional
attribute names (so databases can be loaded from CSV headers and query
results can be displayed meaningfully) and helpers for validating facts and
atoms against the schema.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Mapping, Optional, Sequence, Tuple

from ..errors import ArityError, SchemaError

__all__ = ["RelationSchema", "Schema"]


@dataclass(frozen=True)
class RelationSchema:
    """A single relation symbol ``R/n`` with optional attribute names.

    Parameters
    ----------
    name:
        The relation symbol, e.g. ``"Employee"``.
    arity:
        The number of attributes ``n``; must be positive (the paper assumes
        ``n > 0`` for facts).
    attributes:
        Optional attribute names.  When omitted, positional names
        ``("a1", ..., "an")`` are generated so every relation always has a
        usable header.
    """

    name: str
    arity: int
    attributes: Tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("relation name must be a non-empty string")
        if self.arity <= 0:
            raise SchemaError(
                f"relation {self.name!r} must have positive arity, got {self.arity}"
            )
        if not self.attributes:
            object.__setattr__(
                self, "attributes", tuple(f"a{i + 1}" for i in range(self.arity))
            )
        if len(self.attributes) != self.arity:
            raise SchemaError(
                f"relation {self.name!r} declares {self.arity} attributes but "
                f"names {len(self.attributes)} of them"
            )
        if len(set(self.attributes)) != len(self.attributes):
            raise SchemaError(
                f"relation {self.name!r} has duplicate attribute names: "
                f"{self.attributes}"
            )

    def position_of(self, attribute: str) -> int:
        """Return the 1-based position of ``attribute``.

        The paper indexes key positions starting from 1 (``key(R) = {1}``
        refers to the first attribute), so every positional API in this
        library is 1-based as well.
        """
        try:
            return self.attributes.index(attribute) + 1
        except ValueError as exc:
            raise SchemaError(
                f"relation {self.name!r} has no attribute {attribute!r}; "
                f"known attributes: {self.attributes}"
            ) from exc

    def __str__(self) -> str:
        return f"{self.name}({', '.join(self.attributes)})"


class Schema:
    """A finite collection of :class:`RelationSchema` objects.

    The schema is the static part of a database instance: it fixes which
    relation symbols exist and with which arity.  Facts, atoms and key
    constraints are validated against it.
    """

    def __init__(self, relations: Iterable[RelationSchema] = ()) -> None:
        self._relations: Dict[str, RelationSchema] = {}
        for relation in relations:
            self.add_relation(relation)

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_arities(cls, arities: Mapping[str, int]) -> "Schema":
        """Build a schema from a ``{relation_name: arity}`` mapping."""
        return cls(RelationSchema(name, arity) for name, arity in arities.items())

    @classmethod
    def from_attributes(
        cls, attributes: Mapping[str, Sequence[str]]
    ) -> "Schema":
        """Build a schema from a ``{relation_name: [attribute, ...]}`` mapping."""
        return cls(
            RelationSchema(name, len(attrs), tuple(attrs))
            for name, attrs in attributes.items()
        )

    def add_relation(self, relation: RelationSchema) -> None:
        """Add a relation, rejecting redeclarations with a different shape."""
        existing = self._relations.get(relation.name)
        if existing is not None and existing != relation:
            raise SchemaError(
                f"relation {relation.name!r} is already declared as {existing} "
                f"and cannot be redeclared as {relation}"
            )
        self._relations[relation.name] = relation

    def declare(
        self, name: str, arity: int, attributes: Optional[Sequence[str]] = None
    ) -> RelationSchema:
        """Declare (or fetch an identical existing) relation and return it."""
        relation = RelationSchema(name, arity, tuple(attributes or ()))
        self.add_relation(relation)
        return self._relations[name]

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #
    def relation(self, name: str) -> RelationSchema:
        """Return the declared relation ``name`` or raise :class:`SchemaError`."""
        try:
            return self._relations[name]
        except KeyError as exc:
            raise SchemaError(
                f"relation {name!r} is not declared in the schema; "
                f"known relations: {sorted(self._relations)}"
            ) from exc

    def arity(self, name: str) -> int:
        """Return the arity of relation ``name``."""
        return self.relation(name).arity

    def __contains__(self, name: object) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    def relation_names(self) -> Tuple[str, ...]:
        """Return the declared relation names in declaration order."""
        return tuple(self._relations)

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #
    def check_terms(self, relation_name: str, terms: Sequence[object]) -> None:
        """Validate that ``terms`` matches the arity of ``relation_name``."""
        relation = self.relation(relation_name)
        if len(terms) != relation.arity:
            raise ArityError(
                f"relation {relation_name!r} has arity {relation.arity} but "
                f"received {len(terms)} terms: {tuple(terms)!r}"
            )

    # ------------------------------------------------------------------ #
    # dunder conveniences
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._relations == other._relations

    def __repr__(self) -> str:
        body = ", ".join(str(rel) for rel in self)
        return f"Schema({body})"
