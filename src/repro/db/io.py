"""Loading and saving databases.

Inconsistent databases typically come from integrating conflicting sources;
in practice that means CSV dumps or JSON documents.  This module provides a
small, dependency-free persistence layer:

* :func:`load_csv_directory` / :func:`save_csv_directory` — one CSV file per
  relation, first row is the header (attribute names).
* :func:`database_to_json` / :func:`database_from_json` — a single JSON
  document holding schema, key constraints and facts, convenient for
  fixtures and for shipping example scenarios.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import SchemaError
from .constraints import KeyConstraint, PrimaryKeySet
from .database import Database
from .facts import Constant, Fact
from .schema import RelationSchema, Schema

__all__ = [
    "load_csv_directory",
    "save_csv_directory",
    "database_to_json",
    "database_from_json",
    "load_json",
    "save_json",
]


def _coerce(value: str) -> Constant:
    """Best-effort conversion of a CSV cell to int, float or str."""
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        pass
    return value


def load_csv_directory(
    directory: Union[str, Path],
    keys: Optional[Mapping[str, Sequence[int]]] = None,
) -> Tuple[Database, PrimaryKeySet]:
    """Load every ``*.csv`` file in ``directory`` as one relation each.

    The file stem is the relation name and the first row is the header.
    ``keys`` optionally maps relation names to 1-based key positions; when
    omitted an empty :class:`PrimaryKeySet` is returned.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise FileNotFoundError(f"{directory} is not a directory")
    schema = Schema()
    facts: List[Fact] = []
    for csv_path in sorted(directory.glob("*.csv")):
        relation_name = csv_path.stem
        with csv_path.open(newline="") as handle:
            reader = csv.reader(handle)
            rows = list(reader)
        if not rows:
            continue
        header, *data_rows = rows
        schema.add_relation(RelationSchema(relation_name, len(header), tuple(header)))
        for row in data_rows:
            if not row:
                continue
            if len(row) != len(header):
                raise SchemaError(
                    f"{csv_path}: row {row!r} has {len(row)} cells, "
                    f"expected {len(header)}"
                )
            facts.append(Fact(relation_name, tuple(_coerce(cell) for cell in row)))
    database = Database(facts, schema=schema)
    key_set = PrimaryKeySet(
        KeyConstraint(name, positions) for name, positions in (keys or {}).items()
    )
    return database, key_set


def save_csv_directory(database: Database, directory: Union[str, Path]) -> None:
    """Write the database as one CSV file per relation into ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for relation_name in database.relation_names():
        relation_schema = database.schema.relation(relation_name)
        path = directory / f"{relation_name}.csv"
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(relation_schema.attributes)
            for item in sorted(database.relation(relation_name)):
                writer.writerow(list(item.arguments))


def database_to_json(
    database: Database, keys: Optional[PrimaryKeySet] = None
) -> Dict[str, object]:
    """Serialise a database (and optionally its keys) to a JSON-able dict."""
    relations = {
        relation.name: list(relation.attributes) for relation in database.schema
    }
    facts = [
        {"relation": item.relation, "arguments": list(item.arguments)}
        for item in database.sorted_facts()
    ]
    payload: Dict[str, object] = {"relations": relations, "facts": facts}
    if keys is not None:
        payload["keys"] = {
            constraint.relation: list(constraint.sorted_positions)
            for constraint in keys
        }
    return payload


def database_from_json(payload: Mapping[str, object]) -> Tuple[Database, PrimaryKeySet]:
    """Inverse of :func:`database_to_json`."""
    relations = payload.get("relations", {})
    schema = Schema()
    for name, attributes in dict(relations).items():  # type: ignore[arg-type]
        schema.add_relation(RelationSchema(name, len(attributes), tuple(attributes)))
    facts = [
        Fact(entry["relation"], tuple(entry["arguments"]))
        for entry in payload.get("facts", [])  # type: ignore[union-attr]
    ]
    database = Database(facts, schema=schema if len(schema) else None)
    keys_payload = payload.get("keys", {}) or {}
    key_set = PrimaryKeySet(
        KeyConstraint(name, positions)
        for name, positions in dict(keys_payload).items()  # type: ignore[arg-type]
    )
    return database, key_set


def save_json(
    database: Database, path: Union[str, Path], keys: Optional[PrimaryKeySet] = None
) -> None:
    """Write the JSON serialisation of a database to ``path``."""
    Path(path).write_text(json.dumps(database_to_json(database, keys), indent=2))


def load_json(path: Union[str, Path]) -> Tuple[Database, PrimaryKeySet]:
    """Load a database (and its keys) from a JSON file written by :func:`save_json`."""
    payload = json.loads(Path(path).read_text())
    return database_from_json(payload)
