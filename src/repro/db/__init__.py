"""Relational database substrate: schemas, facts, databases, keys, blocks.

This subpackage implements the data model of Section 2.1 of the paper:
databases as finite sets of facts, primary-key constraints, the key value
``key_Σ(α)`` of a fact, and the canonical block decomposition
``B1 ≺ ... ≺ Bn`` that repairs are built from.
"""

from .blocks import Block, BlockDecomposition
from .constraints import KeyConstraint, KeyValue, PrimaryKeySet
from .database import Database
from .delta import Delta
from .facts import Constant, Fact, fact
from .lineage import LINEAGE_KINDS, CheckpointRecord, Lineage, LineageRecord
from .io import (
    database_from_json,
    database_to_json,
    load_csv_directory,
    load_json,
    save_csv_directory,
    save_json,
)
from .schema import RelationSchema, Schema

__all__ = [
    "Block",
    "BlockDecomposition",
    "CheckpointRecord",
    "Constant",
    "Database",
    "Delta",
    "Fact",
    "KeyConstraint",
    "KeyValue",
    "LINEAGE_KINDS",
    "Lineage",
    "LineageRecord",
    "PrimaryKeySet",
    "RelationSchema",
    "Schema",
    "fact",
    "database_from_json",
    "database_to_json",
    "load_csv_directory",
    "load_json",
    "save_csv_directory",
    "save_json",
]
