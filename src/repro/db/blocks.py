"""Block decomposition of an inconsistent database.

Under primary keys, the facts of a database partition into *blocks*: maximal
sets of facts sharing the same key value ``key_Σ(α)``.  A repair keeps
exactly one fact from each block, so the set of repairs is (isomorphic to)
the cartesian product of the blocks.  The paper fixes a canonical ordering
``≺_{D,Σ}`` of the blocks (lexicographic on key values), which this module
reproduces: :class:`BlockDecomposition` exposes the blocks as an ordered
sequence ``B1, ..., Bn`` and is the backbone of repair enumeration,
counting, the guess–check–expand transducer and the compactor.
"""

from __future__ import annotations

from bisect import insort
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .constraints import KeyValue, PrimaryKeySet
from .database import Database
from .delta import Delta
from .facts import Fact

__all__ = ["Block", "BlockDecomposition"]


def _key_sort_token(value: KeyValue) -> Tuple[str, Tuple[Tuple[str, str], ...]]:
    """A total-order token for a key value.

    Key values may mix constant types (ints, strings); we order constants by
    ``(type name, string rendering)`` so the lexicographic ordering
    ``≺_{D,Σ}`` is total, deterministic and independent of insertion order.
    """
    relation, constants = value
    return (relation, tuple((type(c).__name__, str(c)) for c in constants))


@dataclass(frozen=True)
class Block:
    """One block ``B_i``: all facts of ``D`` with a given key value.

    Attributes
    ----------
    key_value:
        The shared key value of the facts in the block.
    facts:
        The facts of the block, sorted canonically so that position ``j``
        within the block is well defined (used by samplers and compactors).
    """

    key_value: KeyValue
    facts: Tuple[Fact, ...]

    def __post_init__(self) -> None:
        if not self.facts:
            raise ValueError("a block must contain at least one fact")

    def __len__(self) -> int:
        return len(self.facts)

    def __iter__(self) -> Iterator[Fact]:
        return iter(self.facts)

    def __contains__(self, item: object) -> bool:
        return item in self.facts

    @property
    def relation(self) -> str:
        """The relation all facts of the block belong to."""
        return self.key_value[0]

    def is_conflicting(self) -> bool:
        """True iff the block holds more than one fact (an actual conflict)."""
        return len(self.facts) > 1

    def index_of(self, item: Fact) -> int:
        """Return the 0-based position of ``item`` within the block."""
        return self.facts.index(item)

    def __str__(self) -> str:
        rendered = ", ".join(str(item) for item in self.facts)
        return f"Block[{self.relation}{self.key_value[1]}]{{{rendered}}}"


class BlockDecomposition:
    """The ordered block sequence ``B1 ≺ B2 ≺ ... ≺ Bn`` of ``(D, Σ)``.

    The ordering is the lexicographic ordering of key values used throughout
    the paper (``≺_{D,Σ}``).  The decomposition is computed once and reused
    by every algorithm that needs it (enumeration, counting, sampling,
    transducers, compactors).
    """

    def __init__(self, database: Database, keys: PrimaryKeySet) -> None:
        grouped: Dict[KeyValue, List[Fact]] = defaultdict(list)
        for item in database:
            grouped[keys.key_value(item)].append(item)
        ordered_values = sorted(grouped, key=_key_sort_token)
        blocks = tuple(
            Block(value, tuple(sorted(grouped[value]))) for value in ordered_values
        )
        self._install(database, keys, blocks)

    def _install(
        self, database: Database, keys: PrimaryKeySet, blocks: Tuple[Block, ...]
    ) -> None:
        """Set every field from an already-ordered block sequence."""
        self._database = database
        self._keys = keys
        self._blocks: Tuple[Block, ...] = blocks
        self._index_by_key: Dict[KeyValue, int] = {
            block.key_value: index for index, block in enumerate(self._blocks)
        }
        self._index_by_fact: Dict[Fact, int] = {}
        for index, block in enumerate(self._blocks):
            for item in block:
                self._index_by_fact[item] = index

    @classmethod
    def _from_blocks(
        cls, database: Database, keys: PrimaryKeySet, blocks: Tuple[Block, ...]
    ) -> "BlockDecomposition":
        """Build a decomposition from blocks already in ``≺_{D,Σ}`` order."""
        decomposition = cls.__new__(cls)
        decomposition._install(database, keys, blocks)
        return decomposition

    @classmethod
    def from_blocks(
        cls, database: Database, keys: PrimaryKeySet, blocks: Sequence[Block]
    ) -> "BlockDecomposition":
        """Rehydrate a decomposition from an already-ordered block sequence.

        This is the persistence hook: the on-disk decomposition cache
        (:class:`~repro.store.DecompositionDiskCache`) stores only
        the blocks and reattaches the caller's (database, keys) pair at
        load time.  The blocks must be exactly the blocks of ``(database,
        keys)`` in ``≺_{D,Σ}`` order — which content addressing guarantees
        when the entry is keyed by the pair's snapshot token.
        """
        return cls._from_blocks(database, keys, tuple(blocks))

    # ------------------------------------------------------------------ #
    # incremental maintenance
    # ------------------------------------------------------------------ #
    def apply_delta(
        self, delta: Delta, database: Optional[Database] = None
    ) -> "BlockDecomposition":
        """The decomposition of ``self.database.apply_delta(delta)``.

        Only the blocks whose key value is touched by the delta are
        regrouped and re-sorted; every untouched :class:`Block` object is
        reused as-is and the merged ordering is produced by splicing the
        touched keys into the existing ``≺_{D,Σ}`` sequence.  The result is
        guaranteed equal (block for block) to a full
        ``BlockDecomposition(new_database, keys)`` rebuild — the randomized
        property suite pins this equivalence.

        ``database`` optionally passes the already-derived new snapshot so
        callers that need both do not apply the delta twice.
        """
        if database is None:
            database = self._database.apply_delta(delta)
        really_inserted, really_deleted = delta.effective_against(self._database)

        changes: Dict[KeyValue, Tuple[Set[Fact], Set[Fact]]] = {}
        for item in really_inserted:
            changes.setdefault(self._keys.key_value(item), (set(), set()))[0].add(item)
        for item in really_deleted:
            changes.setdefault(self._keys.key_value(item), (set(), set()))[1].add(item)
        if not changes:
            return BlockDecomposition._from_blocks(database, self._keys, self._blocks)

        replaced: Dict[KeyValue, Optional[Block]] = {}  # None marks a vanished block
        brand_new: List[Block] = []
        for key_value, (added, removed) in changes.items():
            index = self._index_by_key.get(key_value)
            if index is None:
                brand_new.append(Block(key_value, tuple(sorted(added))))
                continue
            facts = set(self._blocks[index].facts)
            facts.difference_update(removed)
            facts.update(added)
            replaced[key_value] = (
                Block(key_value, tuple(sorted(facts))) if facts else None
            )

        merged: List[Block] = []
        for block in self._blocks:
            if block.key_value in replaced:
                replacement = replaced[block.key_value]
                if replacement is not None:
                    merged.append(replacement)
            else:
                merged.append(block)
        for block in brand_new:
            insort(merged, block, key=lambda b: _key_sort_token(b.key_value))
        return BlockDecomposition._from_blocks(database, self._keys, tuple(merged))

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def database(self) -> Database:
        """The database that was decomposed."""
        return self._database

    @property
    def keys(self) -> PrimaryKeySet:
        """The primary keys used for the decomposition."""
        return self._keys

    @property
    def blocks(self) -> Tuple[Block, ...]:
        """The blocks in ``≺_{D,Σ}`` order."""
        return self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[Block]:
        return iter(self._blocks)

    def __getitem__(self, index: int) -> Block:
        return self._blocks[index]

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    def block_of(self, item: Fact) -> Block:
        """Return the block containing ``item`` (the paper's ``block_Σ(α, D)``)."""
        return self._blocks[self.block_index_of(item)]

    def block_index_of(self, item: Fact) -> int:
        """Return the 0-based index of the block containing ``item``."""
        try:
            return self._index_by_fact[item]
        except KeyError as exc:
            raise KeyError(f"fact {item} does not belong to the database") from exc

    def block_for_key(self, key_value: KeyValue) -> Block:
        """Return the block with the given key value."""
        return self._blocks[self._index_by_key[key_value]]

    def index_for_key(self, key_value: KeyValue) -> Optional[int]:
        """The 0-based index of the block with ``key_value`` (None if absent).

        The engine's delta-migration path uses this to remap selector
        coordinates from one snapshot's decomposition to the next.
        """
        return self._index_by_key.get(key_value)

    # ------------------------------------------------------------------ #
    # derived quantities
    # ------------------------------------------------------------------ #
    def block_sizes(self) -> Tuple[int, ...]:
        """Sizes ``|B1|, ..., |Bn|`` in block order."""
        return tuple(len(block) for block in self._blocks)

    def conflicting_blocks(self) -> Tuple[Block, ...]:
        """Blocks with at least two facts (actual conflicts)."""
        return tuple(block for block in self._blocks if block.is_conflicting())

    def max_block_size(self) -> int:
        """``max_i |B_i|`` — the quantity ``m`` in the FPRAS sample bound."""
        if not self._blocks:
            return 0
        return max(len(block) for block in self._blocks)

    def total_repairs(self) -> int:
        """``|rep(D, Σ)| = Π_i |B_i|`` (1 for the empty database).

        This is the "easy" counting problem the paper notes is in FP.
        """
        total = 1
        for block in self._blocks:
            total *= len(block)
        return total

    def is_consistent(self) -> bool:
        """True iff the database has no conflicting block."""
        return all(not block.is_conflicting() for block in self._blocks)

    # ------------------------------------------------------------------ #
    # repair assembly
    # ------------------------------------------------------------------ #
    def repair_from_choices(self, choices: Sequence[int]) -> Database:
        """Build the repair selecting fact ``choices[i]`` from block ``B_i``.

        ``choices`` must have one 0-based index per block.  Because every
        repair keeps exactly one fact per block, this gives a bijection
        between index vectors and repairs — it is the library counterpart of
        the tuple ``⟨α1, ..., αn⟩ ∈ Π_{D,Σ}`` in the paper.
        """
        if len(choices) != len(self._blocks):
            raise ValueError(
                f"expected {len(self._blocks)} choices (one per block), "
                f"got {len(choices)}"
            )
        selected = [
            block.facts[choice] for block, choice in zip(self._blocks, choices)
        ]
        return Database(selected, schema=self._database.schema)

    def choices_from_repair(self, repair: Database) -> Tuple[int, ...]:
        """Inverse of :meth:`repair_from_choices` for a valid repair."""
        choices: List[int] = []
        facts_by_block: Dict[int, Fact] = {}
        for item in repair:
            index = self.block_index_of(item)
            if index in facts_by_block:
                raise ValueError(
                    f"not a repair: block {index} contributes both "
                    f"{facts_by_block[index]} and {item}"
                )
            facts_by_block[index] = item
        for index, block in enumerate(self._blocks):
            if index not in facts_by_block:
                raise ValueError(f"not a repair: block {index} ({block}) is missing")
            choices.append(block.index_of(facts_by_block[index]))
        return tuple(choices)

    def is_repair(self, candidate: Database) -> bool:
        """True iff ``candidate`` is a repair of ``(D, Σ)``.

        A repair is a maximal consistent subset of ``D``, equivalently a set
        keeping exactly one fact from each block.
        """
        try:
            self.choices_from_repair(candidate)
        except (ValueError, KeyError):
            return False
        return True

    def __repr__(self) -> str:
        return (
            f"BlockDecomposition(blocks={len(self._blocks)}, "
            f"repairs={self.total_repairs()})"
        )
