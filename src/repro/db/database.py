"""Databases: finite sets of facts.

The :class:`Database` class is the central data container of the library.
It behaves like an immutable-by-convention set of :class:`~repro.db.facts.Fact`
objects, indexed by relation name for fast access, and carries an optional
:class:`~repro.db.schema.Schema` against which facts are validated.
"""

from __future__ import annotations

from collections import defaultdict
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..errors import SchemaError
from .facts import Constant, Fact
from .schema import RelationSchema, Schema

__all__ = ["Database"]


class Database:
    """A finite set of facts over a schema.

    Parameters
    ----------
    facts:
        The facts of the database.  Duplicates are silently collapsed (a
        database is a set).
    schema:
        Optional schema.  When provided, every fact is validated against it
        (declared relation, correct arity).  When omitted, a schema is
        inferred from the facts themselves: each relation gets the arity of
        its first fact, and facts with a conflicting arity are rejected.
    """

    def __init__(
        self,
        facts: Iterable[Fact] = (),
        schema: Optional[Schema] = None,
    ) -> None:
        self._facts: Set[Fact] = set()
        self._by_relation: Dict[str, Set[Fact]] = defaultdict(set)
        self._schema = schema if schema is not None else Schema()
        self._schema_was_given = schema is not None
        for item in facts:
            self.add(item)

    # ------------------------------------------------------------------ #
    # construction / mutation
    # ------------------------------------------------------------------ #
    def add(self, new_fact: Fact) -> None:
        """Add a fact, validating or extending the schema as appropriate."""
        if not isinstance(new_fact, Fact):
            raise TypeError(f"expected a Fact, got {type(new_fact).__name__}")
        if new_fact.relation in self._schema:
            self._schema.check_terms(new_fact.relation, new_fact.arguments)
        elif self._schema_was_given:
            raise SchemaError(
                f"fact {new_fact} uses relation {new_fact.relation!r} which is "
                f"not declared in the provided schema"
            )
        else:
            self._schema.add_relation(
                RelationSchema(new_fact.relation, new_fact.arity)
            )
        self._facts.add(new_fact)
        self._by_relation[new_fact.relation].add(new_fact)

    def update(self, facts: Iterable[Fact]) -> None:
        """Add every fact from ``facts``."""
        for item in facts:
            self.add(item)

    def discard(self, old_fact: Fact) -> None:
        """Remove ``old_fact`` if present (no error if absent)."""
        if old_fact in self._facts:
            self._facts.discard(old_fact)
            self._by_relation[old_fact.relation].discard(old_fact)

    # ------------------------------------------------------------------ #
    # set-like protocol
    # ------------------------------------------------------------------ #
    def __contains__(self, item: object) -> bool:
        return item in self._facts

    def __iter__(self) -> Iterator[Fact]:
        return iter(self._facts)

    def __len__(self) -> int:
        return len(self._facts)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Database):
            return self._facts == other._facts
        if isinstance(other, (set, frozenset)):
            return self._facts == other
        return NotImplemented

    def __hash__(self) -> int:  # pragma: no cover - rarely used, but handy
        return hash(frozenset(self._facts))

    def facts(self) -> FrozenSet[Fact]:
        """Return the facts as a frozen set."""
        return frozenset(self._facts)

    def sorted_facts(self) -> List[Fact]:
        """Return the facts in the canonical (lexicographic) order."""
        return sorted(self._facts)

    # ------------------------------------------------------------------ #
    # schema and relation access
    # ------------------------------------------------------------------ #
    @property
    def schema(self) -> Schema:
        """The schema the database conforms to (given or inferred)."""
        return self._schema

    def relation(self, name: str) -> FrozenSet[Fact]:
        """Return all facts of relation ``name`` (empty set if none)."""
        return frozenset(self._by_relation.get(name, frozenset()))

    def relation_names(self) -> Tuple[str, ...]:
        """Return the names of relations that have at least one fact."""
        return tuple(sorted(name for name, facts in self._by_relation.items() if facts))

    # ------------------------------------------------------------------ #
    # domain
    # ------------------------------------------------------------------ #
    def active_domain(self) -> FrozenSet[Constant]:
        """The active domain ``dom(D)``: all constants occurring in ``D``."""
        domain: Set[Constant] = set()
        for item in self._facts:
            domain.update(item.arguments)
        return frozenset(domain)

    def active_domain_sorted(self) -> List[Constant]:
        """The active domain as a deterministically ordered list.

        Constants of mixed types (ints and strings) are ordered by
        ``(type name, value as string)`` so the order is total and stable,
        which matters for reproducible enumeration in tests and benchmarks.
        """
        return sorted(self.active_domain(), key=lambda c: (type(c).__name__, str(c)))

    # ------------------------------------------------------------------ #
    # derived databases
    # ------------------------------------------------------------------ #
    def restrict(self, facts: Iterable[Fact]) -> "Database":
        """Return a new database containing only the given facts of ``self``."""
        kept = [item for item in facts if item in self._facts]
        return Database(kept, schema=self._schema)

    def union(self, other: "Database") -> "Database":
        """Return a new database with the facts of both databases."""
        combined = Database(self._facts)
        combined.update(other)
        return combined

    def copy(self) -> "Database":
        """Return a shallow copy (facts are immutable, so this is safe)."""
        return Database(self._facts, schema=self._schema if self._schema_was_given else None)

    # ------------------------------------------------------------------ #
    # display
    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:
        if len(self._facts) <= 8:
            rendered = ", ".join(str(item) for item in self.sorted_facts())
            return f"Database({{{rendered}}})"
        return f"Database(<{len(self._facts)} facts over {len(self.relation_names())} relations>)"

    def pretty(self, max_facts_per_relation: Optional[int] = None) -> str:
        """Return a human-readable multi-line rendering of the database."""
        lines: List[str] = []
        for name in self.relation_names():
            facts = sorted(self._by_relation[name])
            shown: Sequence[Fact] = facts
            suffix = ""
            if max_facts_per_relation is not None and len(facts) > max_facts_per_relation:
                shown = facts[:max_facts_per_relation]
                suffix = f"  ... ({len(facts) - max_facts_per_relation} more)"
            lines.append(f"{name} ({len(facts)} facts):")
            lines.extend(f"  {item}" for item in shown)
            if suffix:
                lines.append(suffix)
        return "\n".join(lines) if lines else "<empty database>"
