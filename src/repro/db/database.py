"""Databases: finite sets of facts.

The :class:`Database` class is the central data container of the library.
It behaves like an immutable-by-convention set of :class:`~repro.db.facts.Fact`
objects, indexed by relation name for fast access, and carries an optional
:class:`~repro.db.schema.Schema` against which facts are validated.

Databases additionally support an explicit *snapshot* lifecycle: calling
:meth:`Database.freeze` pins the content (further mutation raises
:class:`~repro.errors.FrozenDatabaseError`), makes the stable
:meth:`Database.content_digest` the identity used by ``__hash__``/``__eq__``,
and enables :meth:`Database.apply_delta`, which derives the *next* frozen
snapshot from a :class:`~repro.db.delta.Delta` while sharing the per-relation
index sets of every relation the delta does not touch.  Content-addressed
snapshots are what the batch engine keys its caches by.
"""

from __future__ import annotations

import hashlib
from collections import defaultdict
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..errors import FrozenDatabaseError, SchemaError
from .delta import Delta
from .facts import Constant, Fact
from .schema import RelationSchema, Schema

__all__ = ["Database"]


def _fact_token(item: Fact) -> str:
    """A canonical, type-tagged rendering of a fact.

    ``repr`` alone would conflate ``1`` and ``"1"`` across type changes in
    future constant kinds; tagging each argument with its type name makes
    the token (and hence the content digest) injective on facts for all
    practical constant types, and stable across processes and Python
    versions (unlike salted ``hash``).
    """
    arguments = "\x1e".join(
        f"{type(argument).__name__}:{argument!r}" for argument in item.arguments
    )
    return f"{item.relation}\x1f{arguments}"


class Database:
    """A finite set of facts over a schema.

    Parameters
    ----------
    facts:
        The facts of the database.  Duplicates are silently collapsed (a
        database is a set).
    schema:
        Optional schema.  When provided, every fact is validated against it
        (declared relation, correct arity).  When omitted, a schema is
        inferred from the facts themselves: each relation gets the arity of
        its first fact, and facts with a conflicting arity are rejected.
    """

    def __init__(
        self,
        facts: Iterable[Fact] = (),
        schema: Optional[Schema] = None,
    ) -> None:
        self._facts: Set[Fact] = set()
        self._by_relation: Dict[str, Set[Fact]] = defaultdict(set)
        self._schema = schema if schema is not None else Schema()
        self._schema_was_given = schema is not None
        self._frozen = False
        self._digest: Optional[str] = None
        self._hash: Optional[int] = None
        for item in facts:
            self.add(item)

    # ------------------------------------------------------------------ #
    # construction / mutation
    # ------------------------------------------------------------------ #
    def add(self, new_fact: Fact) -> None:
        """Add a fact, validating or extending the schema as appropriate."""
        if self._frozen:
            raise FrozenDatabaseError(
                f"cannot add {new_fact} to a frozen database snapshot; "
                f"derive a new snapshot with apply_delta() instead"
            )
        if not isinstance(new_fact, Fact):
            raise TypeError(f"expected a Fact, got {type(new_fact).__name__}")
        if new_fact.relation in self._schema:
            self._schema.check_terms(new_fact.relation, new_fact.arguments)
        elif self._schema_was_given:
            raise SchemaError(
                f"fact {new_fact} uses relation {new_fact.relation!r} which is "
                f"not declared in the provided schema"
            )
        else:
            self._schema.add_relation(
                RelationSchema(new_fact.relation, new_fact.arity)
            )
        self._facts.add(new_fact)
        self._by_relation[new_fact.relation].add(new_fact)
        self._digest = None

    def update(self, facts: Iterable[Fact]) -> None:
        """Add every fact from ``facts``."""
        for item in facts:
            self.add(item)

    def discard(self, old_fact: Fact) -> None:
        """Remove ``old_fact`` if present (no error if absent)."""
        if self._frozen:
            raise FrozenDatabaseError(
                f"cannot discard {old_fact} from a frozen database snapshot; "
                f"derive a new snapshot with apply_delta() instead"
            )
        if old_fact in self._facts:
            self._facts.discard(old_fact)
            self._by_relation[old_fact.relation].discard(old_fact)
            self._digest = None

    # ------------------------------------------------------------------ #
    # snapshots: freezing, content addressing, deltas
    # ------------------------------------------------------------------ #
    @property
    def is_frozen(self) -> bool:
        """True once :meth:`freeze` has pinned the content."""
        return self._frozen

    def freeze(self) -> "Database":
        """Pin the database as an immutable snapshot and return ``self``.

        Freezing is idempotent.  A frozen database rejects ``add``/
        ``discard``/``update`` with :class:`~repro.errors.FrozenDatabaseError`
        and switches ``__hash__``/``__eq__`` to the digest fast path, which
        is what makes snapshots cheap dictionary keys for engine caches.
        """
        if not self._frozen:
            self._frozen = True
            self.content_digest()  # pin the digest eagerly
            # Cache the set hash too: hashing stays consistent with equal
            # unfrozen databases while costing O(1) per lookup once frozen.
            self._hash = hash(frozenset(self._facts))
        return self

    def content_digest(self) -> str:
        """A stable SHA-256 hex digest of the fact set.

        The digest is computed from a canonical (sorted, type-tagged)
        serialisation of the facts, so it is identical across processes,
        machines and Python versions for equal databases — the property the
        persistent selector cache relies on.  It is cached until the next
        mutation (and forever once frozen).
        """
        if self._digest is None:
            hasher = hashlib.sha256()
            for item in sorted(self._facts):
                hasher.update(_fact_token(item).encode("utf-8"))
                hasher.update(b"\x00")
            self._digest = hasher.hexdigest()
        return self._digest

    def apply_delta(self, delta: Delta) -> "Database":
        """Derive the next frozen snapshot ``(self - deleted) + inserted``.

        Unchanged relations *share* their per-relation index sets with
        ``self`` (safe because both snapshots are frozen), so the cost of an
        update is proportional to the facts of the touched relations plus
        one ``O(n)`` fact-set copy — not a full re-validation of every fact.
        Inserted facts are validated against the schema exactly like
        :meth:`add` would; deleting a fact that is absent and inserting a
        fact that is present are no-ops (deltas are declarative).

        ``self`` need not be frozen, but the result always is.
        """
        really_inserted, really_deleted = delta.effective_against(self)
        touched = {item.relation for item in really_inserted + really_deleted}

        schema = self._schema
        schema_was_given = self._schema_was_given
        new_relations = [
            item
            for item in really_inserted
            if item.relation not in schema
        ]
        for item in really_inserted:
            if item.relation in schema:
                schema.check_terms(item.relation, item.arguments)
            elif schema_was_given:
                raise SchemaError(
                    f"delta inserts {item} over relation {item.relation!r} "
                    f"which is not declared in the database's schema"
                )
        # The snapshot must not share mutable structure with a mutable
        # source: an unfrozen source could later extend the shared schema
        # (or edit shared index sets) behind the frozen snapshot's back,
        # making equal-digest snapshots behave differently.
        share_untouched = self._frozen
        if new_relations or not self._frozen:
            schema = Schema(iter(schema))
        for item in new_relations:
            if item.relation not in schema:
                schema.add_relation(RelationSchema(item.relation, item.arity))
            else:
                schema.check_terms(item.relation, item.arguments)
        clone = Database.__new__(Database)
        clone._schema = schema
        clone._schema_was_given = schema_was_given
        clone._facts = set(self._facts)
        clone._facts.difference_update(really_deleted)
        clone._facts.update(really_inserted)
        clone._by_relation = defaultdict(set)
        for name, facts in self._by_relation.items():
            if name in touched:
                clone._by_relation[name] = set(facts)
            elif facts:
                clone._by_relation[name] = facts if share_untouched else set(facts)
        for item in really_deleted:
            clone._by_relation[item.relation].discard(item)
        for item in really_inserted:
            clone._by_relation[item.relation].add(item)
        clone._frozen = False
        clone._digest = None
        clone._hash = None
        return clone.freeze()

    # ------------------------------------------------------------------ #
    # set-like protocol
    # ------------------------------------------------------------------ #
    def __contains__(self, item: object) -> bool:
        return item in self._facts

    def __iter__(self) -> Iterator[Fact]:
        return iter(self._facts)

    def __len__(self) -> int:
        return len(self._facts)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Database):
            if self._frozen and other._frozen:
                return self.content_digest() == other.content_digest()
            return self._facts == other._facts
        if isinstance(other, (set, frozenset)):
            return self._facts == other
        return NotImplemented

    def __hash__(self) -> int:
        if self._hash is not None:
            return self._hash
        return hash(frozenset(self._facts))

    def __getstate__(self) -> Dict[str, object]:
        # The cached set hash is salted per-process (PYTHONHASHSEED), so it
        # must not travel to worker processes; the content digest is stable
        # and may.
        state = self.__dict__.copy()
        state["_hash"] = None
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        if self._frozen:
            self._hash = hash(frozenset(self._facts))

    def facts(self) -> FrozenSet[Fact]:
        """Return the facts as a frozen set."""
        return frozenset(self._facts)

    def sorted_facts(self) -> List[Fact]:
        """Return the facts in the canonical (lexicographic) order."""
        return sorted(self._facts)

    # ------------------------------------------------------------------ #
    # schema and relation access
    # ------------------------------------------------------------------ #
    @property
    def schema(self) -> Schema:
        """The schema the database conforms to (given or inferred)."""
        return self._schema

    def relation(self, name: str) -> FrozenSet[Fact]:
        """Return all facts of relation ``name`` (empty set if none)."""
        return frozenset(self._by_relation.get(name, frozenset()))

    def relation_names(self) -> Tuple[str, ...]:
        """Return the names of relations that have at least one fact."""
        return tuple(sorted(name for name, facts in self._by_relation.items() if facts))

    # ------------------------------------------------------------------ #
    # domain
    # ------------------------------------------------------------------ #
    def active_domain(self) -> FrozenSet[Constant]:
        """The active domain ``dom(D)``: all constants occurring in ``D``."""
        domain: Set[Constant] = set()
        for item in self._facts:
            domain.update(item.arguments)
        return frozenset(domain)

    def active_domain_sorted(self) -> List[Constant]:
        """The active domain as a deterministically ordered list.

        Constants of mixed types (ints and strings) are ordered by
        ``(type name, value as string)`` so the order is total and stable,
        which matters for reproducible enumeration in tests and benchmarks.
        """
        return sorted(self.active_domain(), key=lambda c: (type(c).__name__, str(c)))

    # ------------------------------------------------------------------ #
    # derived databases
    # ------------------------------------------------------------------ #
    def restrict(self, facts: Iterable[Fact]) -> "Database":
        """Return a new database containing only the given facts of ``self``."""
        kept = [item for item in facts if item in self._facts]
        return Database(kept, schema=self._schema)

    def union(self, other: "Database") -> "Database":
        """Return a new database with the facts of both databases."""
        combined = Database(self._facts)
        combined.update(other)
        return combined

    def copy(self) -> "Database":
        """Return a shallow copy (facts are immutable, so this is safe)."""
        return Database(self._facts, schema=self._schema if self._schema_was_given else None)

    # ------------------------------------------------------------------ #
    # display
    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:
        if len(self._facts) <= 8:
            rendered = ", ".join(str(item) for item in self.sorted_facts())
            return f"Database({{{rendered}}})"
        return f"Database(<{len(self._facts)} facts over {len(self.relation_names())} relations>)"

    def pretty(self, max_facts_per_relation: Optional[int] = None) -> str:
        """Return a human-readable multi-line rendering of the database."""
        lines: List[str] = []
        for name in self.relation_names():
            facts = sorted(self._by_relation[name])
            shown: Sequence[Fact] = facts
            suffix = ""
            if max_facts_per_relation is not None and len(facts) > max_facts_per_relation:
                shown = facts[:max_facts_per_relation]
                suffix = f"  ... ({len(facts) - max_facts_per_relation} more)"
            lines.append(f"{name} ({len(facts)} facts):")
            lines.extend(f"  {item}" for item in shown)
            if suffix:
                lines.append(suffix)
        return "\n".join(lines) if lines else "<empty database>"
