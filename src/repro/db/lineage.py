"""Snapshot lineage: the recorded history of a registered database name.

Content-addressed snapshots (PR 2) made every database state a digest and
every update a :class:`~repro.db.delta.Delta` between two digests — but
the engine only ever kept the *head*.  A :class:`Lineage` keeps the whole
chain: an append-only sequence of :class:`LineageRecord` entries, one per
registration, delta or rollback of a name, each carrying the digest it
produced, the digest it came from and (for deltas) the **effective** delta
connecting the two.

Effective deltas are exactly invertible (``Delta.inverse``), so a lineage
is a bidirectional replay log: given *any* materialised snapshot on the
chain — in practice the head, which the engine always holds —
:meth:`Lineage.materialise` reconstructs the database of *any other*
recorded digest by walking the delta chain forwards and/or backwards, and
**verifies** the result against the recorded content digest.  That
verification is what makes time travel safe on top of a merely
corruption-*tolerant* store: a damaged history can refuse to replay, but
it can never fabricate a snapshot.

Long chains are compacted with **checkpoints**: a
:class:`CheckpointRecord` marks a chain position whose full database
snapshot has been persisted (through the store's snapshot entries), and
:meth:`Lineage.materialise` accepts a mapping of checkpointed digests to
lazy snapshot loaders — it then replays from the *closest* materialised
source (the head or any loadable checkpoint), so resolution cost is
``O(distance to the nearest checkpoint)`` instead of ``O(chain length)``.

The engine records lineage on ``register``/``apply_delta``
(:class:`~repro.engine.SolverPool`), persists it through the snapshot
catalog (:class:`~repro.store.catalog.SnapshotCatalog`) and serves
historical counts through ``CountJob.as_of``; ``repro history`` prints it.
"""

from __future__ import annotations

import string
from collections import deque
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..errors import LineageError
from .database import Database
from .delta import Delta

__all__ = ["CheckpointRecord", "LineageRecord", "Lineage", "LINEAGE_KINDS"]

#: A lazy snapshot source for checkpoint-aware replay: digest -> loader.
#: A loader returns the checkpointed database, or ``None`` when its stored
#: entry is missing or damaged (the replay then falls back to the next
#: closest source — a lost checkpoint makes resolution slower, never wrong).
CheckpointLoaders = Mapping[str, Callable[[], Optional[Database]]]

#: How a record entered the chain: a (re-)registration, an incremental
#: delta, or a rollback re-registering an ancestor as the head.
LINEAGE_KINDS = ("register", "delta", "rollback")

#: A reference to a recorded snapshot: a digest (or ≥8-character unique
#: digest prefix), or a non-positive chain index (``0`` is the head,
#: ``-2`` is two versions ago).
SnapshotRef = Union[str, int]

_HEX = set(string.hexdigits.lower())


@dataclass(frozen=True)
class LineageRecord:
    """One step of a name's history: the snapshot it produced and its origin.

    Attributes
    ----------
    name:
        The registration name whose chain this record extends.
    sequence:
        Position in the chain (0 for the first record of the name).
    digest:
        Content digest of the database *after* this step.
    keys_digest:
        Content digest of the primary-key set at this step.
    parent_digest:
        Digest the step started from (``None`` for a fresh root).
    kind:
        One of :data:`LINEAGE_KINDS`.  Only ``"delta"`` records connect
        two digests replayably; ``"register"`` and ``"rollback"`` records
        mark head movements whose states are reached through *other*
        records' deltas (or not at all, for unrelated re-registrations).
    delta:
        For ``"delta"`` records, the **effective** delta from parent to
        child (exactly invertible); ``None`` otherwise — including for
        compacted delta records, whose payload has been released.
    wall_time:
        Seconds since the epoch when the step was recorded (provenance
        only — replay never consults it).
    compacted:
        ``None`` for ordinary records.  For a ``"delta"`` record whose
        payload was **compacted** (released once a checkpoint covered
        it), the preserved ``(inserted, deleted)`` fact counts of the
        dropped delta — the audit trail keeps *that* the step happened
        and its magnitude, but the step can no longer be replayed
        through, so ancestors reachable only through it become
        unmaterialisable (loudly, via :class:`~repro.errors.LineageError`).
    """

    name: str
    sequence: int
    digest: str
    keys_digest: str
    parent_digest: Optional[str]
    kind: str
    delta: Optional[Delta]
    wall_time: float
    compacted: Optional[Tuple[int, int]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise LineageError("a lineage record needs a non-empty name")
        if self.sequence < 0:
            raise LineageError(f"negative lineage sequence: {self.sequence}")
        if self.kind not in LINEAGE_KINDS:
            raise LineageError(
                f"unknown lineage record kind {self.kind!r}; "
                f"expected one of {LINEAGE_KINDS}"
            )
        if self.compacted is not None:
            if self.kind != "delta":
                raise LineageError(
                    f"only delta records compact; a {self.kind!r} record "
                    f"has no delta payload to release"
                )
            if self.delta is not None:
                raise LineageError(
                    "a compacted record must have released its delta payload"
                )
            if self.parent_digest is None:
                raise LineageError("a delta record needs both a delta and a parent")
        elif self.kind == "delta" and (
            self.delta is None or self.parent_digest is None
        ):
            raise LineageError("a delta record needs both a delta and a parent")
        if self.kind != "delta" and self.delta is not None:
            raise LineageError(f"a {self.kind!r} record must not carry a delta")

    def __setstate__(self, state: Dict[str, object]) -> None:
        # Records pickled before the ``compacted`` field existed restore
        # without it; default it so old catalogs keep loading.
        state.setdefault("compacted", None)
        for key, value in state.items():
            object.__setattr__(self, key, value)

    def compact(self) -> "LineageRecord":
        """This record with its delta payload released (counts preserved).

        Raises :class:`~repro.errors.LineageError` for records that are
        not replayable delta steps; compacting an already-compacted
        record is the identity.
        """
        if self.compacted is not None:
            return self
        if self.kind != "delta" or self.delta is None:
            raise LineageError(
                f"record {self.sequence} of {self.name!r} is a "
                f"{self.kind!r} record; only delta payloads compact"
            )
        return LineageRecord(
            name=self.name,
            sequence=self.sequence,
            digest=self.digest,
            keys_digest=self.keys_digest,
            parent_digest=self.parent_digest,
            kind=self.kind,
            delta=None,
            wall_time=self.wall_time,
            compacted=(len(self.delta.inserted), len(self.delta.deleted)),
        )

    def to_json(self) -> Dict[str, object]:
        """The record as a JSON-able dict (the CLI history line format)."""
        payload: Dict[str, object] = {
            "sequence": self.sequence,
            "kind": self.kind,
            "digest": self.digest,
            "keys_digest": self.keys_digest,
            "parent_digest": self.parent_digest,
            "wall_time": self.wall_time,
        }
        if self.delta is not None:
            payload["inserted"] = len(self.delta.inserted)
            payload["deleted"] = len(self.delta.deleted)
        elif self.compacted is not None:
            payload["inserted"], payload["deleted"] = self.compacted
            payload["compacted"] = True
        return payload


@dataclass(frozen=True)
class CheckpointRecord:
    """A chain position whose full snapshot is persisted for fast replay.

    A checkpoint does not move the head and is not part of the record
    chain; it *annotates* an existing record (same ``name``/``sequence``/
    ``digest``) and promises that the database of that digest can be
    loaded whole from the store's snapshot entries, so replay can start
    there instead of at the chain origin or the live head.

    >>> CheckpointRecord("live", 2, "a" * 64, "b" * 64, 0.0).sequence
    2
    """

    name: str
    sequence: int
    digest: str
    keys_digest: str
    wall_time: float

    def __post_init__(self) -> None:
        if not self.name:
            raise LineageError("a checkpoint record needs a non-empty name")
        if self.sequence < 0:
            raise LineageError(f"negative checkpoint sequence: {self.sequence}")
        if not self.digest or not self.keys_digest:
            raise LineageError("a checkpoint record needs both digests")

    @property
    def token(self) -> Tuple[str, str]:
        """The snapshot token of the checkpointed state."""
        return (self.digest, self.keys_digest)

    def to_json(self) -> Dict[str, object]:
        """The record as a JSON-able dict (CLI and probe output)."""
        return {
            "sequence": self.sequence,
            "digest": self.digest,
            "keys_digest": self.keys_digest,
            "wall_time": self.wall_time,
        }


class Lineage:
    """The ordered record chain of one registration name.

    Immutable: :meth:`append` returns a new lineage.  The interesting
    operations are :meth:`resolve` (turn an ``as_of`` reference into a
    record), :meth:`materialise` (reconstruct the database of a recorded
    digest from any materialised snapshot on the chain) and
    :meth:`materialise_range` (reconstruct many digests in one shared
    replay walk).

    >>> from repro.db import Database, Delta, fact
    >>> root = Database([fact("R", 1, "a")]).freeze()
    >>> delta = Delta(inserted=[fact("R", 2, "b")])
    >>> head = root.apply_delta(delta)
    >>> chain = Lineage("live").append(
    ...     LineageRecord("live", 0, root.content_digest(), "k", None,
    ...                   "register", None, 0.0)
    ... ).append(
    ...     LineageRecord("live", 1, head.content_digest(), "k",
    ...                   root.content_digest(), "delta", delta, 0.0)
    ... )
    >>> chain.resolve(-1).digest == root.content_digest()  # one version ago
    True
    >>> chain.materialise(head, root.content_digest()) == root  # time travel
    True
    """

    def __init__(self, name: str, records: Tuple[LineageRecord, ...] = ()) -> None:
        if not name:
            raise LineageError("a lineage needs a non-empty name")
        for index, record in enumerate(records):
            if record.name != name:
                raise LineageError(
                    f"record for {record.name!r} cannot join the lineage of {name!r}"
                )
            if record.sequence != index:
                raise LineageError(
                    f"lineage of {name!r} is not contiguous: record at position "
                    f"{index} has sequence {record.sequence}"
                )
        self._name = name
        self._records = tuple(records)
        # The delta adjacency map is derived from the (immutable) records
        # tuple, so it is built at most once per instance; ``append``
        # returns a *new* lineage and never mutates this one.
        self._edges: Optional[Dict[str, List[Tuple[str, Delta, bool]]]] = None

    @property
    def name(self) -> str:
        """The registration name this chain belongs to."""
        return self._name

    @property
    def records(self) -> Tuple[LineageRecord, ...]:
        """The records, oldest first."""
        return self._records

    @property
    def head(self) -> Optional[LineageRecord]:
        """The newest record (the current snapshot), or ``None`` if empty."""
        return self._records[-1] if self._records else None

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[LineageRecord]:
        return iter(self._records)

    def append(self, record: LineageRecord) -> "Lineage":
        """A new lineage extended by ``record`` (which must be next in line)."""
        return Lineage(self._name, self._records + (record,))

    def digests(self) -> Tuple[str, ...]:
        """Every recorded digest, oldest first (duplicates preserved)."""
        return tuple(record.digest for record in self._records)

    # ------------------------------------------------------------------ #
    # reference resolution
    # ------------------------------------------------------------------ #
    def resolve(self, ref: SnapshotRef) -> LineageRecord:
        """The record an ``as_of`` reference names.

        ``ref`` is a digest, a unique digest prefix of at least 8
        characters, or a non-positive int counting versions back from the
        head (``0`` → head, ``-2`` → two versions ago).  When a digest
        appears more than once (a rollback revisits states), the *latest*
        record wins — the states are identical by content addressing.
        """
        if not self._records:
            raise LineageError(f"the lineage of {self._name!r} is empty")
        if isinstance(ref, bool) or not isinstance(ref, (str, int)):
            raise LineageError(
                f"a snapshot reference must be a digest or a chain index, "
                f"got {ref!r}"
            )
        if isinstance(ref, int):
            if ref > 0:
                raise LineageError(
                    f"chain indices count back from the head and must be <= 0, "
                    f"got {ref}"
                )
            position = len(self._records) - 1 + ref
            if position < 0:
                raise LineageError(
                    f"{self._name!r} has only {len(self._records)} recorded "
                    f"version(s); cannot go back {-ref}"
                )
            return self._records[position]

        prefix = ref.lower()
        if len(prefix) < 8 or not set(prefix) <= _HEX:
            raise LineageError(
                f"a digest reference needs at least 8 hex characters, got {ref!r}"
            )
        matches = [
            record for record in self._records if record.digest.startswith(prefix)
        ]
        if not matches:
            raise LineageError(
                f"no recorded snapshot of {self._name!r} matches digest {ref!r}"
            )
        distinct = {record.digest for record in matches}
        if len(distinct) > 1:
            raise LineageError(
                f"digest prefix {ref!r} is ambiguous for {self._name!r}: "
                f"{sorted(digest[:12] for digest in distinct)}"
            )
        return matches[-1]

    # ------------------------------------------------------------------ #
    # replay
    # ------------------------------------------------------------------ #
    def materialise(
        self,
        database: Database,
        target_digest: str,
        checkpoints: Optional[CheckpointLoaders] = None,
    ) -> Database:
        """Reconstruct the snapshot ``target_digest`` from the closest source.

        ``database`` may be *any* materialised snapshot whose digest
        appears on (or connects to) the chain — in practice the head.  The
        recorded delta records form a graph over digests; each edge can be
        walked forwards (apply the delta) or backwards (apply its
        inverse, exact because recorded deltas are effective).

        ``checkpoints`` optionally maps checkpointed digests to lazy
        snapshot loaders (see :data:`CheckpointLoaders`).  Replay then
        starts from the **closest** available source — the provided
        database or any loadable checkpoint — so resolving a deep
        reference on a long, checkpointed chain replays
        ``O(distance to the nearest checkpoint)`` deltas instead of the
        whole chain.  A loader returning ``None`` (missing or damaged
        snapshot entry) simply demotes that checkpoint; the next closest
        source is used instead.

        Whatever the source, the result's ``content_digest`` is checked
        against ``target_digest`` — a corrupt or incomplete history fails
        loudly instead of producing a wrong database.
        """
        source_digest = database.content_digest()
        if source_digest == target_digest:
            return database

        edges = self._delta_edges()
        # One BFS *from the target* ranks the possible sources by replay
        # distance; it settles predecessor pointers (not whole paths) and
        # stops as soon as every wanted source is found, so resolving a
        # near ancestor of a long chain never walks the whole graph.
        wanted = {source_digest, *(checkpoints or ())}
        previous, distance = self._search_from(edges, target_digest, wanted)

        candidates: List[Tuple[int, int, str]] = []
        if source_digest in distance:
            # Tie-break in favour of the already-materialised database
            # (rank 0): equal distance, no snapshot entry to load.
            candidates.append((distance[source_digest], 0, source_digest))
        for digest in checkpoints or ():
            if digest in distance and digest != source_digest:
                candidates.append((distance[digest], 1, digest))

        for _, rank, digest in sorted(candidates):
            if rank == 0:
                source: Optional[Database] = database
            else:
                source = checkpoints[digest]()  # type: ignore[index]
                if source is None or source.content_digest() != digest:
                    continue  # lost/damaged checkpoint: fall back, never fail
            current = source
            for delta, forward in self._replay_path(previous, digest):
                current = current.apply_delta(delta if forward else delta.inverse())
            if current.content_digest() != target_digest:
                raise LineageError(
                    f"replaying the recorded chain of {self._name!r} produced "
                    f"{current.content_digest()[:12]} instead of "
                    f"{target_digest[:12]}; the lineage log is corrupt"
                )
            return current
        raise LineageError(
            f"no recorded delta chain of {self._name!r} connects "
            f"{source_digest[:12]} to {target_digest[:12]} (history may "
            f"have been lost, or the snapshots belong to unrelated roots)"
        )

    def materialise_range(
        self,
        database: Database,
        target_digests: Sequence[str],
        checkpoints: Optional[CheckpointLoaders] = None,
    ) -> Iterator[Tuple[str, Database]]:
        """Reconstruct *many* recorded snapshots in one shared replay walk.

        The amortised sibling of :meth:`materialise`: instead of one BFS
        and one replay per target, a single multi-source BFS (seeded with
        the provided ``database`` and every checkpointed digest, exactly
        the entry points :meth:`materialise` ranks) settles **all**
        targets at once, the per-target shortest paths are unioned into a
        replay tree, and the chain is walked once — each requested
        ``(digest, Database)`` pair is yielded as the walk passes it, so
        N versions of one chain segment cost ``O(chain length)`` delta
        applications instead of ``O(N × chain length)``.

        Every yielded snapshot is digest-verified exactly like
        :meth:`materialise`, and a checkpoint whose loader returns
        ``None`` (or a damaged snapshot) demotes silently: its targets
        are re-planned against the remaining entry points.  Duplicate
        target digests are collapsed; each distinct digest is yielded
        once.  Snapshots materialised early in the walk join the entry
        points for the rest of it, so later targets never replay further
        than they would have independently.

        >>> from repro.db import Database, Delta, fact
        >>> root = Database([fact("R", 1, "a")]).freeze()
        >>> delta = Delta(inserted=[fact("R", 2, "b")])
        >>> head = root.apply_delta(delta)
        >>> chain = Lineage("live").append(
        ...     LineageRecord("live", 0, root.content_digest(), "k", None,
        ...                   "register", None, 0.0)
        ... ).append(
        ...     LineageRecord("live", 1, head.content_digest(), "k",
        ...                   root.content_digest(), "delta", delta, 0.0)
        ... )
        >>> resolved = dict(chain.materialise_range(
        ...     head, [root.content_digest(), head.content_digest()]
        ... ))
        >>> resolved[root.content_digest()] == root
        True
        >>> resolved[head.content_digest()] == head
        True
        """
        targets = list(dict.fromkeys(target_digests))
        if not targets:
            return
        source_digest = database.content_digest()
        loaders = dict(checkpoints or {})

        # In-memory entry points, in acquisition order: the provided
        # database first (materialise's rank-0 tie-break), then every
        # target materialised earlier in this very walk.
        in_memory: Dict[str, Database] = {source_digest: database}
        pending: List[str] = []
        for digest in targets:
            if digest == source_digest:
                yield (digest, database)
            else:
                pending.append(digest)

        edges = self._delta_edges()
        while pending:
            # Seed order fixes the tie-break among equal-distance entry
            # points: in-memory snapshots outrank checkpoints (nothing to
            # load), checkpoints tie-break deterministically by digest.
            seeds = list(in_memory) + sorted(
                digest for digest in loaders if digest not in in_memory
            )
            previous, origin, distance = self._search_from_seeds(
                edges, seeds, set(pending)
            )
            unreachable = [digest for digest in pending if digest not in distance]
            if unreachable:
                # Entry points are only ever *removed* on a lost
                # checkpoint and *added* on a successful materialisation,
                # so a target unreachable now can never become reachable.
                raise LineageError(
                    f"no recorded delta chain of {self._name!r} connects "
                    f"{source_digest[:12]} to {unreachable[0][:12]} "
                    f"(history may have been lost, or the snapshots belong "
                    f"to unrelated roots)"
                )
            groups: Dict[str, List[str]] = {}
            for digest in pending:
                groups.setdefault(origin[digest], []).append(digest)
            entry = next(seed for seed in seeds if seed in groups)
            if entry in in_memory:
                base = in_memory[entry]
            else:
                loaded = loaders[entry]()
                if loaded is None or loaded.content_digest() != entry:
                    # Lost/damaged checkpoint: demote silently and
                    # re-plan its targets from the remaining entries.
                    del loaders[entry]
                    continue
                base = loaded

            wanted = set(groups[entry])
            if entry in wanted:
                # A target that is itself a checkpoint: loaded and
                # digest-verified above, zero deltas to replay.
                yield (entry, base)
                in_memory[entry] = base

            # Union the BFS-tree paths entry -> target into a replay
            # tree.  BFS parents are unique, so walking each target back
            # until a node already in the tree yields a well-formed tree
            # whose edge count is at most the sum of the path lengths.
            children: Dict[str, List[Tuple[str, Delta, bool]]] = {}
            in_tree = {entry}
            for target in groups[entry]:
                if target == entry:
                    continue
                path: List[Tuple[str, str, Delta, bool]] = []
                node = target
                while node not in in_tree:
                    parent, delta, forward = previous[node]
                    path.append((parent, node, delta, forward))
                    node = parent
                for parent, child, delta, forward in reversed(path):
                    children.setdefault(parent, []).append(
                        (child, delta, forward)
                    )
                    in_tree.add(child)

            # Walk the tree once.  Edges were traversed entry -> target,
            # so each is applied in its *stored* orientation (the
            # opposite of _replay_path, which walks target -> source).
            stack: List[Tuple[str, Database]] = [(entry, base)]
            while stack:
                node, state = stack.pop()
                for child, delta, forward in children.get(node, ()):
                    branch = state.apply_delta(
                        delta if forward else delta.inverse()
                    )
                    if child in wanted:
                        if branch.content_digest() != child:
                            raise LineageError(
                                f"replaying the recorded chain of "
                                f"{self._name!r} produced "
                                f"{branch.content_digest()[:12]} instead of "
                                f"{child[:12]}; the lineage log is corrupt"
                            )
                        yield (child, branch)
                        in_memory[child] = branch
                    stack.append((child, branch))
            pending = [digest for digest in pending if digest not in wanted]

    def replay_distance(
        self,
        source_digest: str,
        target_digest: str,
        checkpoints: Optional[CheckpointLoaders] = None,
    ) -> Optional[int]:
        """How many deltas :meth:`materialise` would replay, or ``None``.

        The cost model of checkpoint compaction, queryable without doing
        the work: the shortest delta distance from ``target_digest`` to
        ``source_digest`` or to any checkpointed digest (loaders are *not*
        invoked — a lost snapshot entry may make the real replay longer).
        """
        if source_digest == target_digest:
            return 0
        wanted = {source_digest, *(checkpoints or ())}
        _, distance = self._search_from(self._delta_edges(), target_digest, wanted)
        found = [distance[digest] for digest in wanted if digest in distance]
        return min(found) if found else None

    def _delta_edges(self) -> Dict[str, List[Tuple[str, Delta, bool]]]:
        """The bidirectional digest graph of the recorded delta records.

        Memoised on the instance: the records tuple is immutable, so the
        adjacency map never changes — and the adaptive checkpoint policy
        probes :meth:`replay_distance` after every read, which made the
        per-call rebuild a measurable hot spot on long chains.
        """
        if self._edges is None:
            edges: Dict[str, List[Tuple[str, Delta, bool]]] = {}
            for record in self._records:
                if record.kind != "delta" or record.delta is None:
                    continue
                assert record.parent_digest is not None  # enforced at construction
                edges.setdefault(record.parent_digest, []).append(
                    (record.digest, record.delta, True)
                )
                edges.setdefault(record.digest, []).append(
                    (record.parent_digest, record.delta, False)
                )
            self._edges = edges
        return self._edges

    @staticmethod
    def _search_from(
        edges: Dict[str, List[Tuple[str, Delta, bool]]],
        start: str,
        wanted: Set[str],
    ) -> Tuple[Dict[str, Tuple[str, Delta, bool]], Dict[str, int]]:
        """BFS from ``start``: predecessor pointers and hop distances.

        Stores O(1) per settled digest (parent pointer + distance), not a
        path — paths are reconstructed on demand by :meth:`_replay_path`
        for the one candidate actually replayed — and stops as soon as
        every digest in ``wanted`` has been settled, so a near source on
        a long chain costs its distance, not the chain length.
        """
        previous: Dict[str, Tuple[str, Delta, bool]] = {}
        distance: Dict[str, int] = {start: 0}
        remaining = set(wanted) - {start}
        queue: "deque[str]" = deque([start])
        while queue and remaining:
            digest = queue.popleft()
            for neighbour, delta, forward in edges.get(digest, ()):
                if neighbour in distance:
                    continue
                # In an unweighted BFS the distance is final at discovery.
                distance[neighbour] = distance[digest] + 1
                previous[neighbour] = (digest, delta, forward)
                remaining.discard(neighbour)
                queue.append(neighbour)
        return previous, distance

    @staticmethod
    def _search_from_seeds(
        edges: Dict[str, List[Tuple[str, Delta, bool]]],
        seeds: Sequence[str],
        wanted: Set[str],
    ) -> Tuple[
        Dict[str, Tuple[str, Delta, bool]],
        Dict[str, str],
        Dict[str, int],
    ]:
        """Multi-source BFS: predecessor pointers, origin seed, distances.

        All seeds start at distance 0, so every settled digest records
        the *nearest* seed (``origin``) — exactly the candidate ranking
        :meth:`materialise` computes one target at a time.  Because the
        queue is seeded in order, equal-distance ties break towards the
        earlier seed (FIFO keeps each depth level in seed order), and the
        search stops once every digest in ``wanted`` has been settled.

        Unlike :meth:`_search_from`, the traversal runs *from* the entry
        points *towards* the targets, so each predecessor edge is already
        in replay orientation — no flip on walk-back.
        """
        previous: Dict[str, Tuple[str, Delta, bool]] = {}
        origin: Dict[str, str] = {}
        distance: Dict[str, int] = {}
        queue: "deque[str]" = deque()
        for seed in seeds:
            if seed in distance:
                continue
            distance[seed] = 0
            origin[seed] = seed
            queue.append(seed)
        remaining = set(wanted) - set(distance)
        while queue and remaining:
            digest = queue.popleft()
            for neighbour, delta, forward in edges.get(digest, ()):
                if neighbour in distance:
                    continue
                distance[neighbour] = distance[digest] + 1
                previous[neighbour] = (digest, delta, forward)
                origin[neighbour] = origin[digest]
                remaining.discard(neighbour)
                queue.append(neighbour)
        return previous, origin, distance

    @staticmethod
    def _replay_path(
        previous: Dict[str, Tuple[str, Delta, bool]],
        source: str,
    ) -> List[Tuple[Delta, bool]]:
        """The edges to replay from ``source`` back to the BFS start.

        ``previous[child] = (parent, delta, forward)`` records that BFS
        reached ``child`` from ``parent`` by traversing the delta with
        ``forward`` orientation; replaying source->start walks each edge
        the *other* way, so every orientation flips — and because the
        walk itself runs source->start, the flipped edges are already in
        replay order.
        """
        steps: List[Tuple[Delta, bool]] = []
        digest = source
        while digest in previous:
            digest, delta, forward = previous[digest]
            steps.append((delta, not forward))
        return steps

    def __repr__(self) -> str:
        head = self.head.digest[:12] if self.head else "<empty>"
        return f"Lineage({self._name!r}, versions={len(self)}, head={head})"
