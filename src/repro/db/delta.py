"""Deltas: first-class descriptions of database updates.

A :class:`Delta` is an immutable pair of fact sets — facts to insert and
facts to delete — that turns one database snapshot into the next.  Deltas
are the unit of change everywhere updates are first-class: the data layer
(:meth:`repro.db.database.Database.apply_delta` derives a new snapshot,
:meth:`repro.db.blocks.BlockDecomposition.apply_delta` updates the block
decomposition incrementally), the batch engine
(:meth:`repro.engine.SolverPool.apply_delta` invalidates only the cache
entries the delta actually touches) and the CLI (``repro update`` and
delta entries in ``repro batch`` job files).

Deltas are declarative, not imperative: inserting a fact that is already
present and deleting a fact that is absent are no-ops, so the same delta
document can be replayed idempotently.  :meth:`Delta.effective_against`
computes the no-op-free core against a concrete database, which is what
every incremental algorithm works from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Set, Tuple, TYPE_CHECKING

from ..errors import DeltaError
from .facts import Fact

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .constraints import KeyValue, PrimaryKeySet
    from .database import Database

__all__ = ["Delta"]


def _as_sorted_fact_tuple(facts: Iterable[Fact], role: str) -> Tuple[Fact, ...]:
    collected: Set[Fact] = set()
    for item in facts:
        if not isinstance(item, Fact):
            raise DeltaError(
                f"delta {role} entries must be Facts, got {type(item).__name__}"
            )
        collected.add(item)
    return tuple(sorted(collected))


@dataclass(frozen=True)
class Delta:
    """An immutable update: facts to insert and facts to delete.

    Duplicates are collapsed and both sides are kept canonically sorted so
    that equal deltas compare (and hash) equal regardless of construction
    order.  A fact may not appear on both sides — "delete then re-insert"
    is a no-op that would make the applied order observable, so it is
    rejected outright.

    >>> from repro.db import Delta, fact
    >>> delta = Delta(inserted=[fact("R", 2, "b")], deleted=[fact("R", 1, "a")])
    >>> len(delta)
    2
    >>> sorted(delta.relations())
    ['R']
    >>> Delta.from_json(delta.to_json()) == delta
    True
    """

    inserted: Tuple[Fact, ...] = ()
    deleted: Tuple[Fact, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "inserted", _as_sorted_fact_tuple(self.inserted, "insert")
        )
        object.__setattr__(
            self, "deleted", _as_sorted_fact_tuple(self.deleted, "delete")
        )
        overlap = set(self.inserted) & set(self.deleted)
        if overlap:
            rendered = ", ".join(str(item) for item in sorted(overlap))
            raise DeltaError(
                f"delta lists the same fact(s) as inserted and deleted: {rendered}"
            )

    # ------------------------------------------------------------------ #
    # basic shape
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.inserted) + len(self.deleted)

    def is_empty(self) -> bool:
        """True iff the delta changes nothing whatever it is applied to.

        >>> Delta().is_empty()
        True
        """
        return not self.inserted and not self.deleted

    def relations(self) -> FrozenSet[str]:
        """Every relation named by an inserted or deleted fact."""
        return frozenset(
            item.relation for item in self.inserted + self.deleted
        )

    # ------------------------------------------------------------------ #
    # application helpers
    # ------------------------------------------------------------------ #
    def effective_against(
        self, database: "Database"
    ) -> Tuple[Tuple[Fact, ...], Tuple[Fact, ...]]:
        """The no-op-free core ``(really_inserted, really_deleted)``.

        Inserting a present fact and deleting an absent fact are no-ops;
        incremental algorithms (block updates, cache invalidation) must work
        from the effective core or they would invalidate state that did not
        change.

        >>> from repro.db import Database, Delta, fact
        >>> database = Database([fact("R", 1, "a")])
        >>> Delta(inserted=[fact("R", 1, "a")]).effective_against(database)
        ((), ())
        >>> inserted, deleted = Delta(
        ...     inserted=[fact("R", 2, "b")], deleted=[fact("R", 1, "a")]
        ... ).effective_against(database)
        >>> (len(inserted), len(deleted))
        (1, 1)
        """
        really_inserted = tuple(
            item for item in self.inserted if item not in database
        )
        really_deleted = tuple(item for item in self.deleted if item in database)
        return really_inserted, really_deleted

    def inverse(self) -> "Delta":
        """The delta that undoes this one: inserts deleted, deletes inserted.

        Exact *only* for effective deltas (every inserted fact was absent,
        every deleted fact was present — see :meth:`effective_against`):
        then applying the delta and its inverse in either order is the
        identity.  Snapshot lineages record effective deltas precisely so
        that history can be replayed in both directions
        (:meth:`repro.db.lineage.Lineage.materialise`).

        >>> from repro.db import Database, Delta, fact
        >>> database = Database([fact("R", 1, "a")]).freeze()
        >>> delta = Delta(inserted=[fact("R", 2, "b")], deleted=[fact("R", 1, "a")])
        >>> database.apply_delta(delta).apply_delta(delta.inverse()) == database
        True
        """
        return Delta(inserted=self.deleted, deleted=self.inserted)

    def touched_key_values(
        self, keys: "PrimaryKeySet", database: "Database"
    ) -> FrozenSet["KeyValue"]:
        """The key values (block identities) the delta effectively touches."""
        really_inserted, really_deleted = self.effective_against(database)
        return frozenset(
            keys.key_value(item) for item in really_inserted + really_deleted
        )

    # ------------------------------------------------------------------ #
    # serialisation (the job-file / CLI wire format)
    # ------------------------------------------------------------------ #
    def to_json(self) -> Dict[str, object]:
        """The delta as a JSON-able dict (inverse of :meth:`from_json`)."""
        payload: Dict[str, object] = {}
        if self.inserted:
            payload["insert"] = [
                {"relation": item.relation, "arguments": list(item.arguments)}
                for item in self.inserted
            ]
        if self.deleted:
            payload["delete"] = [
                {"relation": item.relation, "arguments": list(item.arguments)}
                for item in self.deleted
            ]
        return payload

    @classmethod
    def from_json(cls, payload: Mapping[str, object]) -> "Delta":
        """Build a delta from ``{"insert": [...], "delete": [...]}``.

        Fact entries use the database JSON format:
        ``{"relation": "R", "arguments": [1, "a"]}``.
        """
        if not isinstance(payload, Mapping):
            raise DeltaError(
                f"a delta must be a JSON object, got {type(payload).__name__}"
            )
        unknown = set(payload) - {"insert", "delete"}
        if unknown:
            raise DeltaError(f"unknown delta fields: {sorted(unknown)}")

        def parse_side(side: str) -> List[Fact]:
            entries = payload.get(side, [])
            if not isinstance(entries, list):
                raise DeltaError(f"delta {side!r} must be an array of facts")
            facts: List[Fact] = []
            for entry in entries:
                if (
                    not isinstance(entry, Mapping)
                    or "relation" not in entry
                    or "arguments" not in entry
                ):
                    raise DeltaError(
                        f"delta {side!r} entries must look like "
                        f"{{'relation': ..., 'arguments': [...]}}, got {entry!r}"
                    )
                arguments = entry["arguments"]
                if isinstance(arguments, str) or not isinstance(arguments, list):
                    raise DeltaError(
                        f"delta fact arguments must be an array, got {arguments!r}"
                    )
                facts.append(Fact(str(entry["relation"]), tuple(arguments)))
            return facts

        return cls(inserted=parse_side("insert"), deleted=parse_side("delete"))

    def __str__(self) -> str:
        plus = ", ".join(f"+{item}" for item in self.inserted)
        minus = ", ".join(f"-{item}" for item in self.deleted)
        body = ", ".join(piece for piece in (plus, minus) if piece)
        return f"Delta{{{body}}}"
