"""Key constraints and sets of primary keys.

A key constraint (Section 2.1 of the paper) is an expression
``key(R) = A`` where ``A`` is a set of attribute positions of ``R``.  A
database ``D`` satisfies it if any two facts of ``D`` over ``R`` that agree
on the positions in ``A`` are equal.  A set of *primary* keys has at most
one key per relation.

Following the paper, we normalise keys so that the key positions are always
a prefix ``{1, ..., m}`` of the attribute positions.  The library does not
force users into that normal form: :class:`KeyConstraint` accepts arbitrary
position sets and :meth:`PrimaryKeySet.normalised` produces the prefix form
together with the column permutation that realises it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..errors import ConstraintError
from .database import Database
from .facts import Constant, Fact
from .schema import Schema

__all__ = ["KeyConstraint", "PrimaryKeySet", "KeyValue"]

#: The "key value" of a fact: the relation name together with the projection
#: of the fact on its key positions (or on all positions when the relation
#: has no key).  Two facts conflict exactly when their key values coincide
#: but the facts differ.
KeyValue = Tuple[str, Tuple[Constant, ...]]


@dataclass(frozen=True)
class KeyConstraint:
    """A single key constraint ``key(R) = positions`` (1-based positions)."""

    relation: str
    positions: FrozenSet[int]

    def __init__(self, relation: str, positions: Iterable[int]) -> None:
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "positions", frozenset(positions))
        if not self.relation:
            raise ConstraintError("a key constraint must name a relation")
        if any(position < 1 for position in self.positions):
            raise ConstraintError(
                f"key positions must be >= 1, got {sorted(self.positions)} "
                f"for relation {self.relation!r}"
            )

    @property
    def sorted_positions(self) -> Tuple[int, ...]:
        """Key positions in increasing order."""
        return tuple(sorted(self.positions))

    def is_prefix_key(self) -> bool:
        """True if the key positions are exactly ``{1, ..., m}``.

        The paper assumes this normal form w.l.o.g.; see
        :meth:`PrimaryKeySet.normalised` for converting arbitrary keys.
        """
        return self.positions == frozenset(range(1, len(self.positions) + 1))

    def key_of(self, fact_: Fact) -> Tuple[Constant, ...]:
        """Project ``fact_`` onto the key positions."""
        if fact_.relation != self.relation:
            raise ConstraintError(
                f"key for {self.relation!r} applied to a fact over "
                f"{fact_.relation!r}"
            )
        if self.positions and max(self.positions) > fact_.arity:
            raise ConstraintError(
                f"key positions {self.sorted_positions} exceed the arity "
                f"{fact_.arity} of fact {fact_}"
            )
        return fact_.project(self.sorted_positions)

    def __str__(self) -> str:
        positions = ", ".join(str(position) for position in self.sorted_positions)
        return f"key({self.relation}) = {{{positions}}}"


class PrimaryKeySet:
    """A set of key constraints with at most one key per relation.

    This is the object the paper calls ``Σ``.  It provides:

    * conflict detection between facts (:meth:`in_conflict`),
    * the key value ``key_Σ(α)`` of a fact (:meth:`key_value`),
    * consistency checking of databases and fact sets (:meth:`is_consistent`),
    * enumeration of violated constraints for diagnostics
      (:meth:`violations`).
    """

    def __init__(self, constraints: Iterable[KeyConstraint] = ()) -> None:
        self._by_relation: Dict[str, KeyConstraint] = {}
        for constraint in constraints:
            self.add(constraint)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dict(cls, mapping: Mapping[str, Iterable[int]]) -> "PrimaryKeySet":
        """Build from ``{"R": [1, 2], "S": [1]}``-style mappings."""
        return cls(KeyConstraint(name, positions) for name, positions in mapping.items())

    @classmethod
    def primary_key(cls, relation: str, *positions: int) -> "PrimaryKeySet":
        """Build a singleton set ``{key(relation) = positions}``."""
        return cls([KeyConstraint(relation, positions)])

    def add(self, constraint: KeyConstraint) -> None:
        """Add a constraint, rejecting a second key for the same relation."""
        existing = self._by_relation.get(constraint.relation)
        if existing is not None and existing != constraint:
            raise ConstraintError(
                f"relation {constraint.relation!r} already has the key "
                f"{existing}; a set of primary keys allows at most one key "
                f"per relation"
            )
        self._by_relation[constraint.relation] = constraint

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[KeyConstraint]:
        return iter(self._by_relation.values())

    def __len__(self) -> int:
        return len(self._by_relation)

    def __contains__(self, relation: object) -> bool:
        return relation in self._by_relation

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PrimaryKeySet):
            return NotImplemented
        return self._by_relation == other._by_relation

    def content_digest(self) -> str:
        """A stable SHA-256 hex digest of the constraint set.

        Complements :meth:`repro.db.database.Database.content_digest`: a
        block decomposition (and everything derived from it) is a pure
        function of the *pair* of digests, which is what the batch engine
        keys its caches by.
        """
        hasher = hashlib.sha256()
        for relation in sorted(self._by_relation):
            positions = self._by_relation[relation].sorted_positions
            token = f"{relation}\x1f{','.join(map(str, positions))}"
            hasher.update(token.encode("utf-8"))
            hasher.update(b"\x00")
        return hasher.hexdigest()

    def key_for(self, relation: str) -> Optional[KeyConstraint]:
        """Return the key of ``relation`` or ``None`` if it has no key."""
        return self._by_relation.get(relation)

    def has_key(self, relation: str) -> bool:
        """True if ``Σ`` declares a key for ``relation``.

        This is the test the keywidth function ``kw(Q, Σ)`` and Algorithm 1/2
        perform for every atom of the query.
        """
        return relation in self._by_relation

    def relations_with_keys(self) -> Tuple[str, ...]:
        """Relations that have a declared key, sorted by name."""
        return tuple(sorted(self._by_relation))

    # ------------------------------------------------------------------ #
    # the key value key_Σ(α)
    # ------------------------------------------------------------------ #
    def key_value(self, fact_: Fact) -> KeyValue:
        """The key value ``key_Σ(α)`` of a fact ``α``.

        If ``Σ`` has a key for the fact's relation this is the projection of
        the fact on the key positions, paired with the relation name;
        otherwise it is the whole fact (so an unkeyed fact is only in
        conflict with itself, i.e. never in conflict).
        """
        constraint = self._by_relation.get(fact_.relation)
        if constraint is None:
            return (fact_.relation, fact_.arguments)
        return (fact_.relation, constraint.key_of(fact_))

    def in_conflict(self, first: Fact, second: Fact) -> bool:
        """True iff the two distinct facts share the same key value."""
        if first == second:
            return False
        return self.key_value(first) == self.key_value(second)

    # ------------------------------------------------------------------ #
    # consistency
    # ------------------------------------------------------------------ #
    def is_consistent(self, facts: Iterable[Fact]) -> bool:
        """True iff the given set of facts satisfies every key in ``Σ``.

        This is the paper's ``D |= Σ``.  The check is a single pass with a
        hash map from key values to the (unique) fact claimed for that key.
        """
        seen: Dict[KeyValue, Fact] = {}
        for fact_ in facts:
            value = self.key_value(fact_)
            other = seen.get(value)
            if other is not None and other != fact_:
                return False
            seen[value] = fact_
        return True

    def violations(self, database: Database) -> List[Tuple[Fact, Fact]]:
        """Return one representative conflicting pair per violated key value.

        Useful for diagnostics and for tests; an empty list means the
        database is consistent.
        """
        seen: Dict[KeyValue, Fact] = {}
        conflicts: List[Tuple[Fact, Fact]] = []
        for fact_ in database.sorted_facts():
            value = self.key_value(fact_)
            other = seen.get(value)
            if other is not None and other != fact_:
                conflicts.append((other, fact_))
            else:
                seen[value] = fact_
        return conflicts

    # ------------------------------------------------------------------ #
    # normal form
    # ------------------------------------------------------------------ #
    def normalised(self, schema: Schema) -> Tuple["PrimaryKeySet", Dict[str, Tuple[int, ...]]]:
        """Return an equivalent key set in the paper's prefix normal form.

        The paper assumes w.l.o.g. that every key is ``{1, ..., m}``.  For a
        relation whose key positions are not a prefix, this method computes
        the column permutation that moves the key columns to the front and
        returns (a) the rewritten key set and (b) the permutation applied to
        each relation as a tuple of source positions (1-based).  Relations
        that do not need reordering map to the identity permutation.
        """
        permutations: Dict[str, Tuple[int, ...]] = {}
        rewritten: List[KeyConstraint] = []
        for relation_schema in schema:
            name = relation_schema.name
            constraint = self._by_relation.get(name)
            if constraint is None:
                permutations[name] = tuple(range(1, relation_schema.arity + 1))
                continue
            key_positions = list(constraint.sorted_positions)
            non_key_positions = [
                position
                for position in range(1, relation_schema.arity + 1)
                if position not in constraint.positions
            ]
            permutation = tuple(key_positions + non_key_positions)
            permutations[name] = permutation
            rewritten.append(KeyConstraint(name, range(1, len(key_positions) + 1)))
        return PrimaryKeySet(rewritten), permutations

    def __repr__(self) -> str:
        body = ", ".join(str(constraint) for constraint in self)
        return f"PrimaryKeySet({{{body}}})"
