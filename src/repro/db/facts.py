"""Facts: ground atoms stored in a database.

A fact over a schema ``S`` is an expression ``R(c1, ..., cn)`` where ``R/n``
is a relation of ``S`` and each ``ci`` is a constant.  Facts are immutable
and hashable so they can live in Python sets, which is exactly how
databases are represented (a database is a finite set of facts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple, Union

from ..errors import SchemaError

__all__ = ["Constant", "Fact", "fact"]

#: The constants the paper draws from a countably infinite set ``C``.  In the
#: library a constant is any hashable scalar; strings and integers cover all
#: practical uses and keep facts printable.
Constant = Union[str, int, float, bool]


@dataclass(frozen=True, order=True)
class Fact:
    """An immutable ground atom ``R(c1, ..., cn)``.

    Facts are ordered lexicographically by ``(relation, arguments)``; this
    total order is what the block ordering ``≺_{D,Σ}`` of the paper is built
    on (see :mod:`repro.db.blocks`).
    """

    relation: str
    arguments: Tuple[Constant, ...]

    def __post_init__(self) -> None:
        if not self.relation:
            raise SchemaError("a fact must name a non-empty relation symbol")
        if not isinstance(self.arguments, tuple):
            # Accept any iterable at construction time for ergonomic reasons,
            # but store a tuple so the fact is hashable.
            object.__setattr__(self, "arguments", tuple(self.arguments))
        if len(self.arguments) == 0:
            raise SchemaError(
                f"fact over {self.relation!r} must have at least one argument"
            )

    @property
    def arity(self) -> int:
        """Number of arguments of the fact."""
        return len(self.arguments)

    def project(self, positions: Iterable[int]) -> Tuple[Constant, ...]:
        """Return the arguments at the given 1-based ``positions``.

        This mirrors the paper's ``t[A]`` notation for the projection of a
        tuple on a set of attribute positions, used to define key
        satisfaction.
        """
        return tuple(self.arguments[position - 1] for position in positions)

    def __str__(self) -> str:
        rendered = ", ".join(str(argument) for argument in self.arguments)
        return f"{self.relation}({rendered})"


def fact(relation: str, *arguments: Constant) -> Fact:
    """Convenience constructor: ``fact("R", 1, "a")`` == ``Fact("R", (1, "a"))``."""
    return Fact(relation, tuple(arguments))
