"""Reduction of #CQA to query probability over a probabilistic database.

The paper notes (after Corollary 6.4) that ``#CQA(Q, Σ)`` reduces to
``DisjPDB(Q)`` — computing the probability of ``Q`` over a
disjoint-independent probabilistic database — by an approximation-preserving
reduction: give every fact of a block probability ``1/|block|``; then the
possible worlds are exactly the repairs, each equally likely, so

    ``#CQA(Q, Σ)(D) = P(Q) · |rep(D, Σ)|``.

This module packages that reduction.  It is the route by which the paper's
problem *inherits* an FPRAS from Dalvi–Suciu; the point of Section 6 is that
the direct natural-sample-space FPRAS is simpler, and benchmark E6 compares
the two concretely.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Union

from ..db.constraints import PrimaryKeySet
from ..db.database import Database
from ..pdb.model import DisjointIndependentPDB, pdb_from_inconsistent_database
from ..pdb.probability import query_probability_exact
from ..query.ast import Query
from ..query.rewriting import UCQ

__all__ = ["PDBReduction", "cqa_to_pdb", "count_via_pdb"]


@dataclass(frozen=True)
class PDBReduction:
    """The uniform PDB image of a #CQA instance, with the repair count."""

    pdb: DisjointIndependentPDB
    total_repairs: int


def cqa_to_pdb(database: Database, keys: PrimaryKeySet) -> PDBReduction:
    """Build the uniform-block PDB whose worlds are the repairs of ``(D, Σ)``."""
    pdb, decomposition = pdb_from_inconsistent_database(database, keys)
    return PDBReduction(pdb=pdb, total_repairs=decomposition.total_repairs())


def count_via_pdb(
    database: Database, keys: PrimaryKeySet, query: Union[Query, UCQ]
) -> int:
    """Compute #CQA by going through the probabilistic-database reduction.

    Exact: evaluates ``P(Q)`` on the uniform PDB with the certificate-based
    inclusion–exclusion and multiplies by the number of repairs.  Used by
    tests to cross-validate the direct counters against the PDB route.
    """
    reduction = cqa_to_pdb(database, keys)
    probability: Fraction = query_probability_exact(reduction.pdb, query)
    scaled = probability * reduction.total_repairs
    if scaled.denominator != 1:
        raise AssertionError(
            f"P(Q) * |rep| = {scaled} is not an integer; the uniform-PDB "
            f"correspondence has been violated"
        )
    return int(scaled)
