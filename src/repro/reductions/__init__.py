"""Executable many-one reductions from the paper's hardness proofs.

Every reduction here is parsimonious (count-preserving) and validated by
tests that compare source-problem and target-problem counts on randomised
instances.
"""

from .between_problems import (
    coloring_to_disjoint_dnf,
    cqa_to_disjoint_dnf,
    disjoint_dnf_to_cqa,
)
from .cqa_to_pdb import PDBReduction, count_via_pdb, cqa_to_pdb
from .lambda_to_cqa import LambdaReduction, lambda_to_cqa, target_keys, target_query
from .sat_to_cqa import SatReduction, sat_to_cqa

__all__ = [
    "LambdaReduction",
    "PDBReduction",
    "SatReduction",
    "coloring_to_disjoint_dnf",
    "count_via_pdb",
    "cqa_to_disjoint_dnf",
    "cqa_to_pdb",
    "disjoint_dnf_to_cqa",
    "lambda_to_cqa",
    "sat_to_cqa",
    "target_keys",
    "target_query",
]
