"""The reduction behind Theorems 3.2 and 3.3: 3SAT / #3SAT to #CQA(FO).

The paper proves that for a *fixed* first-order query ``Q`` and a *fixed*
set ``Σ`` of primary keys, ``#CQA>0(Q, Σ)`` is NP-hard and ``#CQA(Q, Σ)``
is #P-hard, both under many-one logspace reductions, by reducing from 3SAT
(and its counting version).  The proof is not spelled out in the paper;
the construction implemented here is the standard one and is *parsimonious*
— satisfying assignments of the CNF formula correspond one-to-one to
repairs entailing the query — which is what the #P-hardness via #3SAT
needs.

Construction (for a CNF formula φ with variables ``x1..xn`` and clauses
``c1..cm``):

* schema: ``Var(name, value)`` with ``key(Var) = {name}``;
  ``Lit(clause, position, name, value)`` and ``ClauseId(clause)`` without
  keys.
* database ``D_φ``: for every variable the two facts ``Var(x, 0)`` and
  ``Var(x, 1)`` (one conflicting block per variable, so repairs ↔ truth
  assignments, ``|rep| = 2^n``); for every clause ``c`` and literal at
  position ``p`` over variable ``x`` the fact ``Lit(c, p, x, v)`` where
  ``v`` is the truth value that satisfies the literal; and ``ClauseId(c)``.
* fixed query (genuinely first order — it uses ∀ and ¬, as it must, since
  ∃FO+ queries have an easy decision problem)::

      Q  =  ∀c ( ¬ClauseId(c)  ∨  ∃p, x, v ( Lit(c, p, x, v) ∧ Var(x, v) ) )

A repair picks one ``Var`` fact per variable — a truth assignment — and
entails ``Q`` iff every clause has a satisfied literal.  Hence
``#CQA(Q, Σ)(D_φ) = #3SAT(φ)`` and ``#CQA>0(Q, Σ)(D_φ) = SAT(φ)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..db.constraints import PrimaryKeySet
from ..db.database import Database
from ..db.facts import Fact
from ..problems.sat import CNFFormula
from ..query.ast import And, Atom, Exists, ForAll, Not, Or, Query, Variable

__all__ = ["SatReduction", "sat_to_cqa"]

#: Relation names used by the (fixed) target schema.
_VAR, _LIT, _CLAUSE_ID = "Var", "Lit", "ClauseId"


def _fixed_query() -> Query:
    """The fixed FO query of the reduction (independent of the formula)."""
    clause = Variable("c")
    position = Variable("p")
    name = Variable("x")
    value = Variable("v")
    some_literal_holds = Exists(
        (position, name, value),
        And(
            (
                Atom(_LIT, (clause, position, name, value)),
                Atom(_VAR, (name, value)),
            )
        ),
    )
    body = ForAll(
        (clause,),
        Or((Not(Atom(_CLAUSE_ID, (clause,))), some_literal_holds)),
    )
    return Query(body, (), name="all-clauses-satisfied")


def _fixed_keys() -> PrimaryKeySet:
    """The fixed key set of the reduction: only ``Var`` is keyed."""
    return PrimaryKeySet.from_dict({_VAR: [1]})


@dataclass(frozen=True)
class SatReduction:
    """The image of a CNF formula under the reduction.

    ``database`` together with the fixed ``query`` and ``keys`` is the
    #CQA instance; ``variable_count`` is kept so callers can check the
    repair-space size ``2^n``.
    """

    database: Database
    query: Query
    keys: PrimaryKeySet
    variable_count: int

    def total_assignments(self) -> int:
        """``2^n``: the number of truth assignments (= total repairs)."""
        return 2 ** self.variable_count


def sat_to_cqa(formula: CNFFormula) -> SatReduction:
    """Map a CNF formula to the equivalent #CQA(FO) instance.

    The reduction is parsimonious: the number of repairs of the produced
    database entailing the produced (fixed) query equals the number of
    satisfying assignments of ``formula``.
    """
    facts: List[Fact] = []
    for variable in formula.variables():
        facts.append(Fact(_VAR, (variable, 0)))
        facts.append(Fact(_VAR, (variable, 1)))
    for clause_index, clause in enumerate(formula.clauses):
        clause_name = f"c{clause_index}"
        facts.append(Fact(_CLAUSE_ID, (clause_name,)))
        for position, literal in enumerate(clause):
            satisfying_value = 1 if literal.positive else 0
            facts.append(
                Fact(_LIT, (clause_name, position, literal.variable, satisfying_value))
            )
    database = Database(facts)
    return SatReduction(
        database=database,
        query=_fixed_query(),
        keys=_fixed_keys(),
        variable_count=len(formula.variables()),
    )
