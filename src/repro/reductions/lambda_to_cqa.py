"""The hardness reduction of Theorem 5.1: from Λ[k] functions to #CQA.

The paper shows that for every ``k ≥ 0`` there is a *fixed* conjunctive
query ``Q_k`` and key set ``Σ_k`` with ``kw(Q_k, Σ_k) = k`` such that every
function ``unfold_M ∈ Λ[k]`` reduces to ``#CQA(Q_k, Σ_k)`` by a many-one
logspace reduction.  The query is

    ``Q_k = ∃z, x1, y1, ..., xk, yk ( Selector(z, x1, y1, ..., xk, yk)
                                      ∧ ⋀_{i=1..k} Element(xi, yi) )``

with the single key ``key(Element) = {1}``, and the reduction maps an input
``x`` of the compactor ``M`` to the database ``D_x`` whose

* ``Element`` facts list, per solution domain, the domain elements the
  compactor's outputs mention (plus the padding fact ``Element(⋆, ⋆)``), and
* ``Selector`` facts encode, one per valid certificate ``c``, the
  ℓ-selector ``single(M(x, c))`` padded with ``⋆`` up to length ``k``.

Repairs of ``D_x`` pick one ``Element`` fact per block (i.e. one mentioned
element per domain), and a repair entails ``Q_k`` iff it extends the pins
of some certificate's selector — so the number of entailing repairs equals
``|⋃_c unfolding(M(x, c))| = unfold_M(x)``.

This module builds ``Q_k``, ``Σ_k`` and ``D_x`` from any
:class:`~repro.lams.compactor.Compactor` and input instance, making the
hardness direction of Theorem 5.1 executable and testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from ..db.constraints import PrimaryKeySet
from ..db.database import Database
from ..db.facts import Fact
from ..errors import ReductionError
from ..lams.compactor import Compactor
from ..query.ast import Atom, Query, Variable
from ..query.builders import conjunctive_query

__all__ = ["LambdaReduction", "target_query", "target_keys", "lambda_to_cqa"]

#: The padding constant the paper writes as ⋆.
_STAR = "*"
_SELECTOR, _ELEMENT = "Selector", "Element"


def target_query(k: int) -> Query:
    """The fixed conjunctive query ``Q_k`` (keywidth ``k`` w.r.t. ``Σ_k``)."""
    if k < 0:
        raise ReductionError(f"k must be non-negative, got {k}")
    z = Variable("z")
    selector_terms: List[object] = [z]
    element_atoms: List[Atom] = []
    for index in range(1, k + 1):
        x = Variable(f"x{index}")
        y = Variable(f"y{index}")
        selector_terms.extend([x, y])
        element_atoms.append(Atom(_ELEMENT, (x, y)))
    atoms = [Atom(_SELECTOR, tuple(selector_terms))] + element_atoms
    return conjunctive_query(atoms, name=f"Q_{k}")


def target_keys() -> PrimaryKeySet:
    """The fixed key set ``Σ_k = { key(Element) = {1} }``."""
    return PrimaryKeySet.from_dict({_ELEMENT: [1]})


@dataclass(frozen=True)
class LambdaReduction:
    """The image ``(D_x, Q_k, Σ_k)`` of a compactor input under the reduction."""

    database: Database
    query: Query
    keys: PrimaryKeySet
    k: int
    certificate_count: int


def _domain_tag(index: int) -> str:
    """The constant naming the ``index``-th solution domain in ``D_x``."""
    return f"d{index}"


def lambda_to_cqa(compactor: Compactor, instance) -> LambdaReduction:
    """Map ``(M, x)`` to the #CQA instance ``(D_x, Q_k, Σ_k)``.

    ``compactor`` must be bounded (``k`` finite) — the construction pads
    selectors to exactly ``k`` pairs, which is only possible with a known
    bound.  The guarantee, checked by the test suite, is::

        count_repairs_satisfying(D_x, Σ_k, Q_k) == compactor.unfold_count(x)
    """
    if compactor.k is None:
        raise ReductionError(
            "the Theorem 5.1 reduction requires a bounded compactor; "
            "unbounded (SpanLL) functions reduce to #CQA only through the "
            "unbounded-selector encoding, which is not a fixed query"
        )
    k = int(compactor.k)
    domains = compactor.solution_domains(instance)
    facts: List[Fact] = [Fact(_ELEMENT, (_STAR, _STAR))]
    mentioned: Set[Tuple[str, str]] = set()
    certificate_count = 0

    for certificate in compactor.certificates(instance):
        certificate_count += 1
        selector = compactor.selector(instance, certificate)
        pins = selector.as_dict()
        if len(pins) > k:
            raise ReductionError(
                f"certificate {certificate!r} pins {len(pins)} domains, "
                f"exceeding the compactor's bound k={k}"
            )
        # Selector fact: the certificate id, then (domain, element) pairs,
        # padded with ⋆ to exactly k pairs.
        selector_arguments: List[object] = [f"cert{certificate_count - 1}"]
        for domain_index in sorted(pins):
            element = domains[domain_index][pins[domain_index]]
            selector_arguments.extend([_domain_tag(domain_index), element])
            mentioned.add((_domain_tag(domain_index), element))
        padding_needed = k - len(pins)
        selector_arguments.extend([_STAR, _STAR] * padding_needed)
        facts.append(Fact(_SELECTOR, tuple(selector_arguments)))
        # Element facts: the paper adds, for every free position of this
        # certificate's output, the full enumeration of that domain.
        for domain_index, domain in enumerate(domains):
            if domain_index in pins:
                continue
            for element in domain:
                mentioned.add((_domain_tag(domain_index), element))

    facts.extend(Fact(_ELEMENT, pair) for pair in sorted(mentioned))
    database = Database(facts)
    return LambdaReduction(
        database=database,
        query=target_query(k),
        keys=target_keys(),
        k=k,
        certificate_count=certificate_count,
    )
