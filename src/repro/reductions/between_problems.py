"""Parsimonious reductions between the paper's counting problems.

Theorems 5.1, 7.1 and 7.2 establish that #CQA^kw_k(∃FO+), #DisjPoskDNF and
#kForbColoring are all Λ[k]-complete, hence pairwise inter-reducible under
many-one logspace reductions.  This module makes three of those arrows
executable (the remaining ones are compositions):

* :func:`cqa_to_disjoint_dnf` — from a #CQA instance to #DisjPoskDNF: the
  parts are the blocks of the database (one Boolean variable per fact) and
  every certificate becomes a clause conjoining the facts it pins.
* :func:`coloring_to_disjoint_dnf` — from #kForbColoring to #DisjPoskDNF:
  one part per node (a variable per available colour) and one clause per
  (edge, forbidden assignment) pair.
* :func:`disjoint_dnf_to_cqa` — from #DisjPoskDNF to #CQA with the fixed
  query ``Q_k`` of Theorem 5.1, obtained by composing the problem's
  compactor with the generic Λ[k] → #CQA reduction.

Each reduction preserves the count exactly (parsimonious), which is what
the round-trip tests check.
"""

from __future__ import annotations

from typing import Dict, List, Tuple, Union

from ..db.blocks import BlockDecomposition
from ..db.constraints import PrimaryKeySet
from ..db.database import Database
from ..errors import ReductionError
from ..problems.coloring import ForbiddenColoringInstance
from ..problems.dnf import DisjointPositiveDNF, DisjointPositiveDNFCompactor
from ..query.ast import Query
from ..query.rewriting import UCQ
from ..repairs.certificates import certificate_selectors, iter_certificates
from .lambda_to_cqa import LambdaReduction, lambda_to_cqa

__all__ = [
    "cqa_to_disjoint_dnf",
    "coloring_to_disjoint_dnf",
    "disjoint_dnf_to_cqa",
]


def _fact_variable(block_index: int, fact_index: int) -> str:
    """The Boolean variable standing for "fact j of block i is kept"."""
    return f"b{block_index}_f{fact_index}"


def cqa_to_disjoint_dnf(
    database: Database,
    keys: PrimaryKeySet,
    query: Union[Query, UCQ],
) -> DisjointPositiveDNF:
    """Reduce a #CQA instance to #DisjPoskDNF with the same count.

    P-assignments of the produced formula correspond one-to-one to repairs
    (choose one fact per block), and a P-assignment satisfies the formula
    iff the corresponding repair entails the query, because every clause is
    the conjunction of the facts pinned by one certificate.
    """
    decomposition = BlockDecomposition(database, keys)
    partition = tuple(
        tuple(_fact_variable(block_index, fact_index) for fact_index in range(len(block)))
        for block_index, block in enumerate(decomposition.blocks)
    )
    certificates = list(iter_certificates(database, keys, query))
    selectors = certificate_selectors(certificates, decomposition, keys)
    clauses: List[Tuple[str, ...]] = []
    for selector in selectors:
        clauses.append(
            tuple(
                _fact_variable(block_index, fact_index)
                for block_index, fact_index in selector.pins
            )
        )
    return DisjointPositiveDNF(partition, tuple(clauses))


def _color_variable(node: str, color: str) -> str:
    """The Boolean variable standing for "node gets colour"."""
    return f"{node}::{color}"


def coloring_to_disjoint_dnf(instance: ForbiddenColoringInstance) -> DisjointPositiveDNF:
    """Reduce #kForbColoring to #DisjPoskDNF with the same count.

    One part per node (its available colours), one clause per
    (edge, forbidden assignment) pair conjoining the corresponding
    node-colour variables.  Colourings correspond to P-assignments and
    "forbidden" corresponds to "satisfies the formula".
    """
    partition = tuple(
        tuple(_color_variable(node, color) for color in palette)
        for node, palette in instance.colors
    )
    clauses: List[Tuple[str, ...]] = []
    for assignments in instance.forbidden:
        for assignment in assignments:
            clauses.append(tuple(_color_variable(node, color) for node, color in assignment))
    return DisjointPositiveDNF(partition, tuple(clauses))


def disjoint_dnf_to_cqa(formula: DisjointPositiveDNF) -> LambdaReduction:
    """Reduce #DisjPoskDNF to #CQA(Q_k, Σ_k) (composition through Λ[k]).

    The formula's compactor witnesses membership in Λ[k] (k = clause width)
    and the generic Theorem 5.1 reduction turns any Λ[k] function into a
    #CQA instance over the fixed query ``Q_k``; their composition is the
    parsimonious reduction promised by Λ[k]-completeness.
    """
    width = formula.width
    compactor = DisjointPositiveDNFCompactor(k=width)
    return lambda_to_cqa(compactor, formula)
