"""First-order query language: AST, parser, fragments, evaluation, rewriting.

The query side of the paper's problem statement.  The central objects are
:class:`~repro.query.ast.Query` (an FO query ``{x̄ | φ}``) and
:class:`~repro.query.rewriting.UCQ` (the normalised union-of-conjunctive-
queries form every certificate-based algorithm consumes).
"""

from .ast import (
    And,
    Atom,
    Bottom,
    Equality,
    Exists,
    ForAll,
    Formula,
    Not,
    Or,
    Query,
    Term,
    Top,
    Variable,
)
from .builders import (
    atom,
    boolean_query,
    conjunctive_query,
    exists_close,
    union_query,
    var,
    vars_,
)
from .classify import (
    QueryClass,
    classify,
    is_conjunctive_query,
    is_existential_positive,
    is_first_order,
    is_self_join_free,
    is_union_of_conjunctive_queries,
)
from .evaluation import answers, evaluate_formula, holds
from .homomorphism import (
    count_homomorphisms,
    exists_homomorphism,
    find_homomorphisms,
    homomorphism_image,
)
from .keywidth import keywidth, max_disjunct_keywidth
from .parser import parse_formula, parse_query
from .rewriting import CQDisjunct, UCQ, to_ucq, ucq_to_query
from .substitution import bind_answer, substitute_formula

__all__ = [
    "And",
    "Atom",
    "Bottom",
    "CQDisjunct",
    "Equality",
    "Exists",
    "ForAll",
    "Formula",
    "Not",
    "Or",
    "Query",
    "QueryClass",
    "Term",
    "Top",
    "UCQ",
    "Variable",
    "answers",
    "atom",
    "bind_answer",
    "boolean_query",
    "classify",
    "conjunctive_query",
    "count_homomorphisms",
    "evaluate_formula",
    "exists_close",
    "exists_homomorphism",
    "find_homomorphisms",
    "holds",
    "homomorphism_image",
    "is_conjunctive_query",
    "is_existential_positive",
    "is_first_order",
    "is_self_join_free",
    "is_union_of_conjunctive_queries",
    "keywidth",
    "max_disjunct_keywidth",
    "parse_formula",
    "parse_query",
    "substitute_formula",
    "to_ucq",
    "ucq_to_query",
    "union_query",
    "var",
    "vars_",
]
