"""Homomorphism search for conjunctive query bodies.

A homomorphism from a set of atoms to a database is a mapping of the atoms'
variables to constants such that every atom is mapped to a fact of the
database.  Homomorphisms are the *small certificates* of the paper's
guess–check–expand paradigm: a repair entails a UCQ iff some disjunct has a
homomorphic image inside the repair (and, for the decision procedure of
Lemma 3.5, inside the database with a consistent image).

The search is classic backtracking with two standard database heuristics:

* atoms are matched most-constrained-first (fewest candidate facts given the
  current partial assignment), and
* candidate facts for an atom are pre-filtered by relation and by the
  constants/bound variables the atom already fixes.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..db.database import Database
from ..db.facts import Constant, Fact
from .ast import Atom, Variable
from .evaluation import Assignment

__all__ = [
    "find_homomorphisms",
    "count_homomorphisms",
    "exists_homomorphism",
    "homomorphism_image",
]


def homomorphism_image(atoms: Sequence[Atom], assignment: Assignment) -> Set[Fact]:
    """The image ``h(Q')``: the set of facts the atoms are mapped to."""
    image: Set[Fact] = set()
    for atom in atoms:
        arguments: List[Constant] = []
        for term in atom.terms:
            if isinstance(term, Variable):
                arguments.append(assignment[term])
            else:
                arguments.append(term)
        image.add(Fact(atom.relation, tuple(arguments)))
    return image


def _candidates(
    atom: Atom, database: Database, assignment: Assignment
) -> List[Fact]:
    """Facts of the database that ``atom`` could map to under ``assignment``."""
    matching: List[Fact] = []
    for fact_ in database.relation(atom.relation):
        if _matches(atom, fact_, assignment):
            matching.append(fact_)
    return matching


def _matches(atom: Atom, fact_: Fact, assignment: Assignment) -> bool:
    """True iff ``fact_`` is compatible with ``atom`` under ``assignment``.

    Repeated variables within the atom must map to equal constants even if
    the variable is not yet bound globally.
    """
    if len(atom.terms) != len(fact_.arguments):
        return False
    local: Dict[Variable, Constant] = {}
    for term, argument in zip(atom.terms, fact_.arguments):
        if isinstance(term, Variable):
            bound = assignment.get(term, local.get(term))
            if bound is None:
                local[term] = argument
            elif bound != argument:
                return False
        elif term != argument:
            return False
    return True


def _extend(atom: Atom, fact_: Fact, assignment: Assignment) -> Assignment:
    """Return ``assignment`` extended with the bindings forced by ``atom -> fact_``."""
    extended = dict(assignment)
    for term, argument in zip(atom.terms, fact_.arguments):
        if isinstance(term, Variable):
            extended[term] = argument
    return extended


def find_homomorphisms(
    atoms: Sequence[Atom],
    database: Database,
    base_assignment: Optional[Assignment] = None,
    limit: Optional[int] = None,
) -> Iterator[Assignment]:
    """Yield homomorphisms from ``atoms`` into ``database``.

    Parameters
    ----------
    atoms:
        The conjunctive query body (order irrelevant).
    database:
        The database to map into.
    base_assignment:
        A partial assignment that every returned homomorphism must extend
        (used when outer variables are already bound).
    limit:
        Stop after yielding this many homomorphisms (``None`` = all).

    Yields
    ------
    dict
        Complete assignments covering every variable of ``atoms`` plus the
        keys of ``base_assignment``.
    """
    base = dict(base_assignment or {})
    if not atoms:
        yield base
        return

    produced = 0

    def backtrack(remaining: List[Atom], assignment: Assignment) -> Iterator[Assignment]:
        nonlocal produced
        if limit is not None and produced >= limit:
            return
        if not remaining:
            produced += 1
            yield dict(assignment)
            return
        # Most-constrained-atom-first: pick the atom with the fewest candidates.
        scored = [
            (len(_candidates(atom, database, assignment)), index)
            for index, atom in enumerate(remaining)
        ]
        count, chosen_index = min(scored)
        if count == 0:
            return
        chosen = remaining[chosen_index]
        rest = remaining[:chosen_index] + remaining[chosen_index + 1 :]
        for fact_ in sorted(_candidates(chosen, database, assignment)):
            yield from backtrack(rest, _extend(chosen, fact_, assignment))
            if limit is not None and produced >= limit:
                return

    yield from backtrack(list(atoms), base)


def exists_homomorphism(
    atoms: Sequence[Atom],
    database: Database,
    base_assignment: Optional[Assignment] = None,
) -> bool:
    """True iff at least one homomorphism exists."""
    for _ in find_homomorphisms(atoms, database, base_assignment, limit=1):
        return True
    return False


def count_homomorphisms(
    atoms: Sequence[Atom],
    database: Database,
    base_assignment: Optional[Assignment] = None,
) -> int:
    """Number of distinct homomorphisms (distinct variable assignments)."""
    return sum(1 for _ in find_homomorphisms(atoms, database, base_assignment))
