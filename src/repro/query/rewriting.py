"""Rewriting existential positive queries into unions of conjunctive queries.

The paper repeatedly uses the fact that every query in ∃FO+ can be rewritten
(in constant time w.r.t. the data, since the query is fixed) into an
equivalent UCQ ``Q1 ∨ ... ∨ Qm`` where each ``Qi`` is a conjunctive query.
All certificate-based machinery — the decision procedure of Lemma 3.5, the
guess–check–expand transducer of Algorithm 1, the compactor of Algorithm 2,
the exact union-of-boxes counter and the FPRAS — operates on that UCQ form.

The rewriting performed here:

1. recursively renames bound variables apart (so distinct quantifiers never
   clash),
2. drops the quantifiers (all non-answer variables are implicitly
   existential in a UCQ disjunct),
3. distributes conjunction over disjunction to reach a DNF of atoms and
   equalities,
4. eliminates equalities by substitution/unification, discarding disjuncts
   whose equalities are unsatisfiable,
5. removes duplicate and subsumed-by-``TRUE`` disjuncts.

The result is a :class:`UCQ` — an explicit, normalised object that the rest
of the library consumes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..db.facts import Constant
from ..errors import FragmentError
from .ast import (
    And,
    Atom,
    Bottom,
    Equality,
    Exists,
    Formula,
    Not,
    Or,
    Query,
    Term,
    Top,
    Variable,
)
from .classify import is_existential_positive

__all__ = ["CQDisjunct", "UCQ", "to_ucq", "ucq_to_query"]


@dataclass(frozen=True)
class CQDisjunct:
    """One conjunctive disjunct of a UCQ.

    Attributes
    ----------
    atoms:
        The relational atoms of the disjunct.  All variables occurring in
        them that are not answer variables are implicitly existentially
        quantified.
    answer_bindings:
        Bindings forced on answer variables by equality elimination (e.g.
        the disjunct ``x = 1 AND R(x, y)`` binds the answer variable ``x``
        to ``1``).  Disjuncts of Boolean queries always have an empty
        mapping.
    always_true:
        True for the degenerate disjunct equivalent to ``TRUE`` (no atoms,
        no bindings); such a disjunct is entailed by every repair.
    """

    atoms: Tuple[Atom, ...]
    answer_bindings: Tuple[Tuple[Variable, Constant], ...] = field(default=())

    @property
    def always_true(self) -> bool:
        return not self.atoms and not self.answer_bindings

    def variables(self) -> FrozenSet[Variable]:
        """All variables occurring in the disjunct's atoms (``var(Qi)``)."""
        collected: Set[Variable] = set()
        for atom in self.atoms:
            collected.update(atom.variables())
        return frozenset(collected)

    def __str__(self) -> str:
        parts = [str(atom) for atom in self.atoms]
        parts.extend(f"{variable} = {value!r}" for variable, value in self.answer_bindings)
        return " AND ".join(parts) if parts else "TRUE"


@dataclass(frozen=True)
class UCQ:
    """A normalised union of conjunctive queries.

    ``disjuncts`` is the tuple of :class:`CQDisjunct` objects;
    ``answer_variables`` is shared by all disjuncts.  An empty ``disjuncts``
    tuple denotes the unsatisfiable query (equivalent to ``FALSE``).
    """

    disjuncts: Tuple[CQDisjunct, ...]
    answer_variables: Tuple[Variable, ...] = field(default=())
    name: Optional[str] = None

    @property
    def is_boolean(self) -> bool:
        return not self.answer_variables

    @property
    def is_unsatisfiable(self) -> bool:
        return not self.disjuncts

    @property
    def is_trivially_true(self) -> bool:
        return any(disjunct.always_true for disjunct in self.disjuncts)

    def __len__(self) -> int:
        return len(self.disjuncts)

    def __iter__(self):
        return iter(self.disjuncts)

    def __str__(self) -> str:
        if not self.disjuncts:
            return "FALSE"
        return " OR ".join(f"({disjunct})" for disjunct in self.disjuncts)


# --------------------------------------------------------------------------- #
# variable renaming
# --------------------------------------------------------------------------- #
class _Renamer:
    """Generates fresh variables, avoiding a given set of reserved names."""

    def __init__(self, reserved: Iterable[Variable]) -> None:
        self._reserved = {variable.name for variable in reserved}
        self._counter = itertools.count()

    def fresh(self, base: Variable) -> Variable:
        while True:
            candidate = f"{base.name}_{next(self._counter)}"
            if candidate not in self._reserved:
                self._reserved.add(candidate)
                return Variable(candidate)


def _rename_apart(
    formula: Formula, renamer: _Renamer, mapping: Dict[Variable, Variable]
) -> Formula:
    """Rename bound variables so that every quantifier binds a fresh name."""
    if isinstance(formula, (Top, Bottom)):
        return formula
    if isinstance(formula, Atom):
        return Atom(
            formula.relation,
            tuple(
                mapping.get(term, term) if isinstance(term, Variable) else term
                for term in formula.terms
            ),
        )
    if isinstance(formula, Equality):
        left = mapping.get(formula.left, formula.left) if isinstance(formula.left, Variable) else formula.left
        right = mapping.get(formula.right, formula.right) if isinstance(formula.right, Variable) else formula.right
        return Equality(left, right)
    if isinstance(formula, And):
        return And(tuple(_rename_apart(child, renamer, mapping) for child in formula.operands))
    if isinstance(formula, Or):
        return Or(tuple(_rename_apart(child, renamer, mapping) for child in formula.operands))
    if isinstance(formula, Exists):
        new_mapping = dict(mapping)
        fresh_variables = []
        for variable in formula.variables:
            fresh = renamer.fresh(variable)
            new_mapping[variable] = fresh
            fresh_variables.append(fresh)
        return Exists(tuple(fresh_variables), _rename_apart(formula.operand, renamer, new_mapping))
    if isinstance(formula, Not):
        raise FragmentError("negation is not allowed in existential positive queries")
    raise FragmentError(
        f"formula node {type(formula).__name__} is outside the ∃FO+ fragment"
    )


# --------------------------------------------------------------------------- #
# DNF expansion
# --------------------------------------------------------------------------- #
_Literal = Tuple[str, object]  # ("atom", Atom) | ("eq", Equality) | ("true", None)


def _dnf(formula: Formula) -> List[List[_Literal]]:
    """Expand a positive, quantifier-stripped formula into DNF.

    Each returned inner list is a conjunction of literals; the outer list is
    the disjunction.  ``Bottom`` contributes no disjunct; ``Top`` contributes
    an empty conjunction.
    """
    if isinstance(formula, Bottom):
        return []
    if isinstance(formula, Top):
        return [[]]
    if isinstance(formula, Atom):
        return [[("atom", formula)]]
    if isinstance(formula, Equality):
        return [[("eq", formula)]]
    if isinstance(formula, Exists):
        # Quantifiers have been renamed apart; dropping them is sound because
        # every non-answer variable of a UCQ disjunct is implicitly existential.
        return _dnf(formula.operand)
    if isinstance(formula, Or):
        result: List[List[_Literal]] = []
        for child in formula.operands:
            result.extend(_dnf(child))
        return result
    if isinstance(formula, And):
        result = [[]]
        for child in formula.operands:
            child_disjuncts = _dnf(child)
            result = [
                existing + addition
                for existing in result
                for addition in child_disjuncts
            ]
        return result
    raise FragmentError(
        f"formula node {type(formula).__name__} is outside the ∃FO+ fragment"
    )


# --------------------------------------------------------------------------- #
# equality elimination (union-find over terms)
# --------------------------------------------------------------------------- #
def _eliminate_equalities(
    atoms: List[Atom],
    equalities: List[Equality],
    answer_variables: Sequence[Variable],
) -> Optional[Tuple[Tuple[Atom, ...], Tuple[Tuple[Variable, Constant], ...]]]:
    """Substitute equalities away.

    Returns ``None`` when the conjunction is unsatisfiable (two distinct
    constants equated).  Otherwise returns the rewritten atoms and the
    bindings forced on answer variables.
    """
    parent: Dict[Term, Term] = {}

    def find(term: Term) -> Term:
        parent.setdefault(term, term)
        while parent[term] != term:
            parent[term] = parent[parent[term]]
            term = parent[term]
        return term

    def union(left: Term, right: Term) -> bool:
        root_left, root_right = find(left), find(right)
        if root_left == root_right:
            return True
        left_is_constant = not isinstance(root_left, Variable)
        right_is_constant = not isinstance(root_right, Variable)
        if left_is_constant and right_is_constant:
            return root_left == root_right
        # Keep constants as representatives so substitution grounds variables.
        if left_is_constant:
            parent[root_right] = root_left
        else:
            parent[root_left] = root_right
        return True

    for equality in equalities:
        if not union(equality.left, equality.right):
            return None

    def resolve(term: Term) -> Term:
        return find(term)

    rewritten_atoms = tuple(
        Atom(atom.relation, tuple(resolve(term) for term in atom.terms))
        for atom in atoms
    )
    bindings: List[Tuple[Variable, Constant]] = []
    for variable in answer_variables:
        representative = find(variable)
        if not isinstance(representative, Variable):
            bindings.append((variable, representative))
    return rewritten_atoms, tuple(bindings)


# --------------------------------------------------------------------------- #
# public entry points
# --------------------------------------------------------------------------- #
def to_ucq(query: Query) -> UCQ:
    """Rewrite an existential positive query into an equivalent UCQ.

    Raises
    ------
    FragmentError
        If the query is not existential positive (contains ¬ or ∀).
    """
    if not is_existential_positive(query):
        raise FragmentError(
            f"query {query} is not existential positive; the UCQ rewriting "
            f"(and every algorithm built on it) only applies to ∃FO+"
        )
    renamer = _Renamer(query.formula.all_variables() | set(query.answer_variables))
    renamed = _rename_apart(query.formula, renamer, {})
    raw_disjuncts = _dnf(renamed)

    disjuncts: List[CQDisjunct] = []
    seen: Set[Tuple[Tuple[Atom, ...], Tuple[Tuple[Variable, Constant], ...]]] = set()
    for literals in raw_disjuncts:
        atoms = [literal for kind, literal in literals if kind == "atom"]
        equalities = [literal for kind, literal in literals if kind == "eq"]
        eliminated = _eliminate_equalities(atoms, equalities, query.answer_variables)
        if eliminated is None:
            continue
        rewritten_atoms, bindings = eliminated
        canonical = _canonicalise_disjunct(rewritten_atoms, bindings, query.answer_variables)
        if canonical in seen:
            continue
        seen.add(canonical)
        disjuncts.append(CQDisjunct(rewritten_atoms, bindings))

    # A trivially-true disjunct subsumes everything else.
    if any(disjunct.always_true for disjunct in disjuncts):
        disjuncts = [disjunct for disjunct in disjuncts if disjunct.always_true][:1]
    return UCQ(tuple(disjuncts), tuple(query.answer_variables), name=query.name)


def _canonicalise_disjunct(
    atoms: Tuple[Atom, ...],
    bindings: Tuple[Tuple[Variable, Constant], ...],
    answer_variables: Sequence[Variable],
) -> Tuple[Tuple[Atom, ...], Tuple[Tuple[Variable, Constant], ...]]:
    """Canonical form used for duplicate elimination.

    Non-answer variables are renamed to positional names in order of first
    occurrence, so two alpha-equivalent disjuncts collapse.
    """
    mapping: Dict[Variable, Variable] = {}
    counter = itertools.count()
    protected = set(answer_variables)

    def canonical_term(term: Term) -> Term:
        if isinstance(term, Variable) and term not in protected:
            if term not in mapping:
                mapping[term] = Variable(f"_v{next(counter)}")
            return mapping[term]
        return term

    canonical_atoms = tuple(
        sorted(
            (
                Atom(atom.relation, tuple(canonical_term(term) for term in atom.terms))
                for atom in atoms
            ),
            key=str,
        )
    )
    canonical_bindings = tuple(sorted(bindings, key=lambda pair: pair[0].name))
    return canonical_atoms, canonical_bindings


def ucq_to_query(ucq: UCQ) -> Query:
    """Convert a :class:`UCQ` back into a :class:`~repro.query.ast.Query`.

    Useful for round-trip testing and for feeding rewritten queries to the
    generic FO evaluator.
    """
    from .builders import exists_close

    disjunct_formulas: List[Formula] = []
    for disjunct in ucq.disjuncts:
        conjuncts: List[Formula] = list(disjunct.atoms)
        conjuncts.extend(
            Equality(variable, value) for variable, value in disjunct.answer_bindings
        )
        if not conjuncts:
            body: Formula = Top()
        elif len(conjuncts) == 1:
            body = conjuncts[0]
        else:
            body = And(tuple(conjuncts))
        disjunct_formulas.append(exists_close(body, keep_free=ucq.answer_variables))
    if not disjunct_formulas:
        formula: Formula = Bottom()
    elif len(disjunct_formulas) == 1:
        formula = disjunct_formulas[0]
    else:
        formula = Or(tuple(disjunct_formulas))
    return Query(formula, ucq.answer_variables, name=ucq.name)
