"""Classification of queries into the fragments the paper studies.

The complexity landscape of the paper depends on the query fragment:

* **FO** — arbitrary first-order queries: #CQA is #P-complete under
  many-one logspace reductions (Theorem 3.3) and has no FPRAS unless
  RP = NP (Theorem 6.1).
* **∃FO+** — existential positive queries: #CQA is "hard-to-count-easy-to-
  decide"; it sits in SpanL (Theorem 3.7), its keywidth-k fragment is
  Λ[k]-complete (Theorem 5.1) and it always admits an FPRAS (Corollary 6.4).
* **UCQ / CQ** — unions of conjunctive queries / conjunctive queries, the
  fragments the certificate machinery is phrased in.

The functions in this module decide membership of a query in each fragment
syntactically and expose a summary :class:`QueryClass`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Counter as CounterType
from collections import Counter

from .ast import (
    And,
    Atom,
    Bottom,
    Equality,
    Exists,
    ForAll,
    Formula,
    Not,
    Or,
    Query,
    Top,
)

__all__ = [
    "QueryClass",
    "classify",
    "is_first_order",
    "is_existential_positive",
    "is_union_of_conjunctive_queries",
    "is_conjunctive_query",
    "is_self_join_free",
]


class QueryClass(Enum):
    """The most specific fragment a query belongs to."""

    CQ = "conjunctive query"
    UCQ = "union of conjunctive queries"
    EXISTENTIAL_POSITIVE = "existential positive query"
    FIRST_ORDER = "first-order query"

    def __str__(self) -> str:
        return self.value


def is_first_order(query: Query) -> bool:
    """Every query expressible in the AST is first order; always True.

    Provided for symmetry with the other predicates so callers can iterate
    over the fragments uniformly.
    """
    return isinstance(query, Query)


def _is_positive(formula: Formula, inside_negation: bool = False) -> bool:
    """True iff the formula contains no negation and no universal quantifier."""
    if isinstance(formula, (Atom, Equality, Top, Bottom)):
        return True
    if isinstance(formula, Not):
        return False
    if isinstance(formula, ForAll):
        return False
    if isinstance(formula, (And, Or)):
        return all(_is_positive(child) for child in formula.children())
    if isinstance(formula, Exists):
        return _is_positive(formula.operand)
    raise TypeError(f"unknown formula node {type(formula).__name__}")


def is_existential_positive(query: Query) -> bool:
    """True iff the query uses only ∃, ∧, ∨ over atoms (and TRUE/FALSE/=)."""
    return _is_positive(query.formula)


def _strip_exists(formula: Formula) -> Formula:
    """Remove leading existential quantifiers."""
    while isinstance(formula, Exists):
        formula = formula.operand
    return formula


def _is_conjunction_of_atoms(formula: Formula) -> bool:
    """True iff the formula is an atom, TRUE, or a conjunction of such.

    Equalities are allowed as conjuncts: they arise from rewriting and can
    always be eliminated by substitution, so they do not push the query out
    of the CQ fragment.
    """
    formula = _strip_exists(formula)
    if isinstance(formula, (Atom, Equality, Top)):
        return True
    if isinstance(formula, And):
        return all(_is_conjunction_of_atoms(child) for child in formula.operands)
    return False


def is_conjunctive_query(query: Query) -> bool:
    """True iff the query is a CQ: ∃-prefix over a conjunction of atoms."""
    return _is_conjunction_of_atoms(query.formula)


def is_union_of_conjunctive_queries(query: Query) -> bool:
    """True iff the query is a UCQ: a disjunction of CQ bodies.

    The disjunction may appear below a shared existential prefix (the
    rewriting in :mod:`repro.query.rewriting` produces the prefix-free
    form, but hand-written queries often share the prefix).
    """
    formula = _strip_exists(query.formula)
    if isinstance(formula, Or):
        return all(_is_conjunction_of_atoms(child) for child in formula.operands)
    return _is_conjunction_of_atoms(formula)


def is_self_join_free(query: Query) -> bool:
    """True iff no relation symbol occurs in two different atoms.

    Self-join-freeness is the restriction under which Maslowski and Wijsen
    first proved their FP / #P-hard dichotomy [8]; the property is exposed
    here because workload generators and benchmarks use it to stratify
    query populations.
    """
    relation_counts: CounterType[str] = Counter(
        atom.relation for atom in query.atoms()
    )
    return all(count <= 1 for count in relation_counts.values())


def classify(query: Query) -> QueryClass:
    """Return the most specific fragment ``query`` belongs to."""
    if is_conjunctive_query(query):
        return QueryClass.CQ
    if is_union_of_conjunctive_queries(query):
        return QueryClass.UCQ
    if is_existential_positive(query):
        return QueryClass.EXISTENTIAL_POSITIVE
    return QueryClass.FIRST_ORDER
