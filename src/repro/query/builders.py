"""Convenience constructors for queries.

The AST in :mod:`repro.query.ast` is deliberately minimal; this module adds
the ergonomic layer a user actually writes queries with:

* :func:`var` / :func:`vars_` for variables,
* :func:`atom` for relational atoms,
* :func:`conjunctive_query` for Boolean or non-Boolean CQs (existentially
  closing all non-answer variables automatically),
* :func:`union_query` for UCQs,
* :func:`boolean_query` for wrapping an arbitrary formula as a Boolean query
  with automatic existential closure.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple, Union

from ..errors import QueryError
from .ast import (
    And,
    Atom,
    Bottom,
    Exists,
    Formula,
    Or,
    Query,
    Term,
    Top,
    Variable,
)

__all__ = [
    "var",
    "vars_",
    "atom",
    "exists_close",
    "conjunctive_query",
    "union_query",
    "boolean_query",
]


def var(name: str) -> Variable:
    """Shorthand for :class:`Variable`."""
    return Variable(name)


def vars_(*names: str) -> Tuple[Variable, ...]:
    """Create several variables at once: ``x, y = vars_("x", "y")``."""
    return tuple(Variable(name) for name in names)


def atom(relation: str, *terms: Union[Term, str, int, float, bool]) -> Atom:
    """Create an atom.

    Strings are treated as *constants*; to refer to a variable pass a
    :class:`Variable` (e.g. created with :func:`var`).  This keeps the
    distinction between constants and variables explicit, as the guides
    recommend, instead of guessing from capitalisation.
    """
    return Atom(relation, tuple(terms))


def exists_close(formula: Formula, keep_free: Sequence[Variable] = ()) -> Formula:
    """Existentially close all free variables of ``formula`` except ``keep_free``."""
    to_bind = tuple(
        sorted(formula.free_variables() - frozenset(keep_free), key=lambda v: v.name)
    )
    if not to_bind:
        return formula
    return Exists(to_bind, formula)


def conjunctive_query(
    atoms: Iterable[Atom],
    answer_variables: Sequence[Variable] = (),
    name: Optional[str] = None,
) -> Query:
    """Build a conjunctive query from its atoms.

    All variables not listed in ``answer_variables`` are existentially
    quantified.  With no atoms the query body is ``TRUE`` (entailed by every
    repair), which is occasionally useful as a neutral element in tests.
    """
    atom_tuple = tuple(atoms)
    if not atom_tuple:
        body: Formula = Top()
    elif len(atom_tuple) == 1:
        body = atom_tuple[0]
    else:
        body = And(atom_tuple)
    closed = exists_close(body, keep_free=answer_variables)
    return Query(closed, tuple(answer_variables), name=name)


def union_query(
    disjunct_atom_lists: Iterable[Iterable[Atom]],
    answer_variables: Sequence[Variable] = (),
    name: Optional[str] = None,
) -> Query:
    """Build a union of conjunctive queries.

    Each element of ``disjunct_atom_lists`` is the atom list of one disjunct;
    every disjunct is existentially closed independently (so the same
    variable name in two disjuncts denotes two different bound variables,
    matching standard UCQ semantics).
    """
    disjuncts = []
    for atom_list in disjunct_atom_lists:
        atom_tuple = tuple(atom_list)
        if not atom_tuple:
            body: Formula = Top()
        elif len(atom_tuple) == 1:
            body = atom_tuple[0]
        else:
            body = And(atom_tuple)
        disjuncts.append(exists_close(body, keep_free=answer_variables))
    if not disjuncts:
        return Query(Bottom(), tuple(answer_variables), name=name)
    if len(disjuncts) == 1:
        return Query(disjuncts[0], tuple(answer_variables), name=name)
    return Query(Or(tuple(disjuncts)), tuple(answer_variables), name=name)


def boolean_query(formula: Formula, name: Optional[str] = None) -> Query:
    """Wrap ``formula`` as a Boolean query, existentially closing free variables."""
    closed = exists_close(formula)
    if closed.free_variables():
        raise QueryError(
            "boolean_query could not close all free variables; this should "
            "not happen and indicates a malformed formula"
        )
    return Query(closed, (), name=name)
