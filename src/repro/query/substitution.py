"""Substitution of constants for variables in formulas and queries.

Counting the repairs that entail a *specific* answer tuple ``t̄`` reduces to
the Boolean case by substituting ``t̄`` for the answer variables — this is
the standard convention the paper adopts ("henceforth, we focus on Boolean
queries, but all the results extend to non-Boolean queries").  This module
implements that substitution over the full FO AST.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..db.facts import Constant
from ..errors import EvaluationError, QueryError
from .ast import (
    And,
    Atom,
    Bottom,
    Equality,
    Exists,
    ForAll,
    Formula,
    Not,
    Or,
    Query,
    Term,
    Top,
    Variable,
)

__all__ = ["substitute_formula", "bind_answer"]


def _substitute_term(term: Term, mapping: Mapping[Variable, Constant]) -> Term:
    if isinstance(term, Variable) and term in mapping:
        return mapping[term]
    return term


def substitute_formula(
    formula: Formula, mapping: Mapping[Variable, Constant]
) -> Formula:
    """Replace free occurrences of the mapped variables by constants.

    Bound variables shadow the mapping, exactly as in the usual definition
    of capture-free substitution (constants cannot be captured, so no
    renaming is ever needed).
    """
    if isinstance(formula, (Top, Bottom)):
        return formula
    if isinstance(formula, Atom):
        return Atom(
            formula.relation,
            tuple(_substitute_term(term, mapping) for term in formula.terms),
        )
    if isinstance(formula, Equality):
        return Equality(
            _substitute_term(formula.left, mapping),
            _substitute_term(formula.right, mapping),
        )
    if isinstance(formula, Not):
        return Not(substitute_formula(formula.operand, mapping))
    if isinstance(formula, And):
        return And(
            tuple(substitute_formula(child, mapping) for child in formula.operands)
        )
    if isinstance(formula, Or):
        return Or(
            tuple(substitute_formula(child, mapping) for child in formula.operands)
        )
    if isinstance(formula, (Exists, ForAll)):
        shadowed = {
            variable: value
            for variable, value in mapping.items()
            if variable not in formula.variables
        }
        rebuilt = substitute_formula(formula.operand, shadowed)
        if isinstance(formula, Exists):
            return Exists(formula.variables, rebuilt)
        return ForAll(formula.variables, rebuilt)
    raise QueryError(f"unknown formula node {type(formula).__name__}")


def bind_answer(query: Query, answer: Sequence[Constant]) -> Query:
    """Bind the answer variables of ``query`` to the tuple ``answer``.

    The result is a Boolean query; counting the repairs that entail it is
    exactly ``#CQA`` for the pair ``(query, answer)``.
    """
    if len(answer) != query.arity:
        raise EvaluationError(
            f"query has arity {query.arity} but the answer tuple has "
            f"{len(answer)} components"
        )
    mapping = dict(zip(query.answer_variables, answer))
    bound = substitute_formula(query.formula, mapping)
    name = query.name
    if name is not None and answer:
        name = f"{name}[{', '.join(map(repr, answer))}]"
    return Query(bound, (), name=name)
