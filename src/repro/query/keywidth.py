"""The keywidth covering function ``kw(Q, Σ)``.

Section 5.1 of the paper defines the keywidth of a query ``Q`` w.r.t. a set
``Σ`` of primary keys as the number of atoms occurring in ``Q`` whose
relation has a key in ``Σ``.  Keywidth is the covering function that
stratifies ``#CQA(∃FO+)``: Theorem 5.1 shows that the keywidth-``k``
fragment is ``Λ[k]``-complete under many-one logspace reductions.

Two flavours are exposed:

* :func:`keywidth` — the paper's definition: count *all* keyed atoms of the
  query (over all disjuncts for a UCQ).  This is the covering function used
  in the completeness theorem.
* :func:`max_disjunct_keywidth` — the per-disjunct maximum, which is the
  quantity that actually bounds the selector length ℓ in Algorithm 2 and
  the exponent ``m^k`` in the FPRAS sample bound; it is never larger than
  :func:`keywidth` and is the number the approximation code uses.
"""

from __future__ import annotations

from typing import Union

from ..db.constraints import PrimaryKeySet
from .ast import Query
from .rewriting import UCQ, to_ucq

__all__ = ["keywidth", "max_disjunct_keywidth", "disjunct_keywidth"]


def keywidth(query: Union[Query, UCQ], keys: PrimaryKeySet) -> int:
    """The paper's keywidth ``kw(Q, Σ)``.

    For a :class:`~repro.query.ast.Query` this counts the keyed atoms of the
    original formula; for a :class:`~repro.query.rewriting.UCQ` it counts
    keyed atoms across all disjuncts.
    """
    if isinstance(query, UCQ):
        return sum(
            1
            for disjunct in query.disjuncts
            for atom in disjunct.atoms
            if keys.has_key(atom.relation)
        )
    return sum(1 for atom in query.atoms() if keys.has_key(atom.relation))


def disjunct_keywidth(disjunct_atoms, keys: PrimaryKeySet) -> int:
    """Number of keyed atoms in a single disjunct's atom list."""
    return sum(1 for atom in disjunct_atoms if keys.has_key(atom.relation))


def max_disjunct_keywidth(query: Union[Query, UCQ], keys: PrimaryKeySet) -> int:
    """The maximum number of keyed atoms over the disjuncts of the UCQ form.

    This bounds the length ℓ of the selectors produced by the compactor
    (Algorithm 2) and therefore the exponent in the FPRAS sample-size bound
    ``t = (2+ε) m^k / ε² · ln(2/δ)`` of Theorem 6.2.  For a conjunctive
    query it coincides with :func:`keywidth`.
    """
    ucq = query if isinstance(query, UCQ) else to_ucq(query)
    if not ucq.disjuncts:
        return 0
    return max(disjunct_keywidth(disjunct.atoms, keys) for disjunct in ucq.disjuncts)
