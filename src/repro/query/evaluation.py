"""First-order query evaluation (model checking) over a database.

This is the substrate every counter ultimately rests on: deciding
``D' |= Q`` for a candidate repair ``D'``.  Evaluation follows the active
domain semantics of the paper — quantifiers range over ``dom(D)`` — and is
implemented as a straightforward recursive evaluator with one significant
optimisation: existential quantification over the variables of a positive
conjunctive block is answered by homomorphism search (backtracking over
atoms, most-constrained-atom first) rather than by blind enumeration of the
active domain, which makes evaluating CQs over realistic databases cheap.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..db.database import Database
from ..db.facts import Constant, Fact
from ..errors import EvaluationError
from .ast import (
    And,
    Atom,
    Bottom,
    Equality,
    Exists,
    ForAll,
    Formula,
    Not,
    Or,
    Query,
    Term,
    Top,
    Variable,
)

__all__ = ["Assignment", "evaluate_formula", "holds", "answers", "substitute_atom"]

#: A (partial) assignment of query variables to constants.
Assignment = Dict[Variable, Constant]


def substitute_atom(atom: Atom, assignment: Assignment) -> Atom:
    """Apply ``assignment`` to an atom, leaving unassigned variables in place."""
    new_terms: List[Term] = []
    for term in atom.terms:
        if isinstance(term, Variable) and term in assignment:
            new_terms.append(assignment[term])
        else:
            new_terms.append(term)
    return Atom(atom.relation, tuple(new_terms))


def _ground_atom(atom: Atom, assignment: Assignment) -> Fact:
    """Turn a fully assigned atom into a fact, raising if a variable is left."""
    arguments: List[Constant] = []
    for term in atom.terms:
        if isinstance(term, Variable):
            if term not in assignment:
                raise EvaluationError(
                    f"variable {term.name!r} of atom {atom} is unbound"
                )
            arguments.append(assignment[term])
        else:
            arguments.append(term)
    return Fact(atom.relation, tuple(arguments))


def _resolve(term: Term, assignment: Assignment) -> Constant:
    if isinstance(term, Variable):
        if term not in assignment:
            raise EvaluationError(f"variable {term.name!r} is unbound")
        return assignment[term]
    return term


def evaluate_formula(
    formula: Formula,
    database: Database,
    assignment: Optional[Assignment] = None,
    domain: Optional[Sequence[Constant]] = None,
) -> bool:
    """Decide whether ``database, assignment |= formula``.

    Parameters
    ----------
    formula:
        The formula to evaluate.
    database:
        The database providing both the facts and (by default) the active
        domain the quantifiers range over.
    assignment:
        Values for the free variables of ``formula``; must cover all of them.
    domain:
        Optional explicit quantification domain; defaults to
        ``database.active_domain_sorted()``.
    """
    if assignment is None:
        assignment = {}
    if domain is None:
        domain = database.active_domain_sorted()
    return _evaluate(formula, database, dict(assignment), list(domain))


def _evaluate(
    formula: Formula,
    database: Database,
    assignment: Assignment,
    domain: List[Constant],
) -> bool:
    if isinstance(formula, Top):
        return True
    if isinstance(formula, Bottom):
        return False
    if isinstance(formula, Atom):
        return _ground_atom(formula, assignment) in database
    if isinstance(formula, Equality):
        return _resolve(formula.left, assignment) == _resolve(formula.right, assignment)
    if isinstance(formula, Not):
        return not _evaluate(formula.operand, database, assignment, domain)
    if isinstance(formula, And):
        return all(
            _evaluate(child, database, assignment, domain) for child in formula.operands
        )
    if isinstance(formula, Or):
        return any(
            _evaluate(child, database, assignment, domain) for child in formula.operands
        )
    if isinstance(formula, Exists):
        return _evaluate_exists(formula, database, assignment, domain)
    if isinstance(formula, ForAll):
        return _evaluate_forall(formula, database, assignment, domain)
    raise TypeError(f"unknown formula node {type(formula).__name__}")


def _evaluate_forall(
    formula: ForAll,
    database: Database,
    assignment: Assignment,
    domain: List[Constant],
) -> bool:
    variables = formula.variables

    def recurse(index: int) -> bool:
        if index == len(variables):
            return _evaluate(formula.operand, database, assignment, domain)
        variable = variables[index]
        for value in domain:
            assignment[variable] = value
            if not recurse(index + 1):
                del assignment[variable]
                return False
        if variables[index] in assignment:
            del assignment[variable]
        return True

    return recurse(0)


def _evaluate_exists(
    formula: Exists,
    database: Database,
    assignment: Assignment,
    domain: List[Constant],
) -> bool:
    # Fast path: if the body is a positive conjunction of atoms (possibly
    # with equalities), answer by homomorphism search instead of enumerating
    # the domain for each bound variable.
    conjuncts = _positive_conjuncts(formula.operand)
    if conjuncts is not None:
        atoms, equalities = conjuncts
        return _exists_homomorphism(
            atoms, equalities, database, assignment, set(formula.variables), domain
        )

    variables = formula.variables

    def recurse(index: int) -> bool:
        if index == len(variables):
            return _evaluate(formula.operand, database, assignment, domain)
        variable = variables[index]
        for value in domain:
            assignment[variable] = value
            if recurse(index + 1):
                del assignment[variable]
                return True
        if variable in assignment:
            del assignment[variable]
        return False

    return recurse(0)


def _positive_conjuncts(
    formula: Formula,
) -> Optional[Tuple[List[Atom], List[Equality]]]:
    """If ``formula`` is a conjunction of atoms/equalities, return them.

    Returns ``None`` when the formula contains any other connective, in
    which case the generic evaluator is used.
    """
    atoms: List[Atom] = []
    equalities: List[Equality] = []
    stack = [formula]
    while stack:
        node = stack.pop()
        if isinstance(node, Atom):
            atoms.append(node)
        elif isinstance(node, Equality):
            equalities.append(node)
        elif isinstance(node, Top):
            continue
        elif isinstance(node, And):
            stack.extend(node.operands)
        else:
            return None
    return atoms, equalities


def _exists_homomorphism(
    atoms: Sequence[Atom],
    equalities: Sequence[Equality],
    database: Database,
    assignment: Assignment,
    bound_variables: Set[Variable],
    domain: List[Constant],
) -> bool:
    """Search for an extension of ``assignment`` satisfying all conjuncts."""
    from .homomorphism import find_homomorphisms  # local import to avoid a cycle

    for extension in find_homomorphisms(
        atoms, database, base_assignment=assignment, limit=None
    ):
        if _equalities_hold(equalities, extension):
            # Variables of equalities that are not covered by any atom must be
            # enumerated over the domain; this is rare (e.g. EXISTS x . x = x).
            leftover = {
                variable
                for equality in equalities
                for variable in equality.free_variables()
                if variable not in extension
            }
            if not leftover:
                return True
            if _satisfy_leftover_equalities(equalities, extension, leftover, domain):
                return True
    if not atoms:
        # Pure equality body, e.g. EXISTS x . x = 1 — enumerate the domain.
        leftover = {
            variable
            for equality in equalities
            for variable in equality.free_variables()
            if variable not in assignment
        } & bound_variables
        return _satisfy_leftover_equalities(equalities, dict(assignment), leftover, domain)
    return False


def _equalities_hold(equalities: Sequence[Equality], assignment: Assignment) -> bool:
    for equality in equalities:
        try:
            if _resolve(equality.left, assignment) != _resolve(equality.right, assignment):
                return False
        except EvaluationError:
            # Unbound variable: defer to leftover handling.
            continue
    return True


def _satisfy_leftover_equalities(
    equalities: Sequence[Equality],
    assignment: Assignment,
    leftover: Set[Variable],
    domain: List[Constant],
) -> bool:
    leftover_list = sorted(leftover, key=lambda variable: variable.name)

    def recurse(index: int, current: Assignment) -> bool:
        if index == len(leftover_list):
            for equality in equalities:
                try:
                    if _resolve(equality.left, current) != _resolve(equality.right, current):
                        return False
                except EvaluationError:
                    return False
            return True
        variable = leftover_list[index]
        for value in domain:
            current[variable] = value
            if recurse(index + 1, current):
                return True
        current.pop(leftover_list[index], None)
        return False

    return recurse(0, dict(assignment))


def holds(query: Query, database: Database, answer: Sequence[Constant] = ()) -> bool:
    """Decide whether the tuple ``answer`` belongs to ``Q(D)``.

    For Boolean queries pass the empty tuple (the default).
    """
    if len(answer) != query.arity:
        raise EvaluationError(
            f"query has arity {query.arity} but the candidate answer has "
            f"{len(answer)} components"
        )
    assignment: Assignment = dict(zip(query.answer_variables, answer))
    return evaluate_formula(query.formula, database, assignment)


def answers(query: Query, database: Database) -> FrozenSet[Tuple[Constant, ...]]:
    """Compute ``Q(D)``: all answer tuples over the active domain.

    For Boolean queries the result is ``{()}`` when the query holds and
    ``frozenset()`` otherwise, mirroring the standard convention.
    """
    domain = database.active_domain_sorted()
    results: Set[Tuple[Constant, ...]] = set()

    def recurse(index: int, assignment: Assignment) -> None:
        if index == len(query.answer_variables):
            if evaluate_formula(query.formula, database, assignment, domain):
                results.add(
                    tuple(assignment[variable] for variable in query.answer_variables)
                )
            return
        variable = query.answer_variables[index]
        for value in domain:
            assignment[variable] = value
            recurse(index + 1, assignment)
        assignment.pop(variable, None)

    recurse(0, {})
    return frozenset(results)
