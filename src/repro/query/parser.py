"""A small text parser for first-order queries.

The syntax is deliberately close to the paper's notation::

    EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)

Grammar (precedence low to high):

.. code-block:: text

    formula    := or_expr
    or_expr    := and_expr ( "OR" and_expr )*
    and_expr   := unary ( "AND" unary )*
    unary      := "NOT" unary | quantifier | primary
    quantifier := ("EXISTS" | "FORALL") var ("," var)* "." formula
    primary    := "(" formula ")" | "TRUE" | "FALSE" | atom | term "=" term
    atom       := NAME "(" term ("," term)* ")"
    term       := variable | constant

Term conventions:

* an identifier starting with a lowercase letter is a **variable**
  (``x``, ``dept``),
* an identifier starting with an uppercase letter, a quoted string
  (``'HR'`` or ``"HR"``) or a number is a **constant**,
* keywords (``AND``, ``OR``, ``NOT``, ``EXISTS``, ``FORALL``, ``TRUE``,
  ``FALSE``) are case-insensitive.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..errors import QueryParseError
from .ast import (
    And,
    Atom,
    Bottom,
    Equality,
    Exists,
    ForAll,
    Formula,
    Not,
    Or,
    Query,
    Term,
    Top,
    Variable,
)
from .builders import exists_close

__all__ = ["parse_formula", "parse_query", "tokenize"]

_KEYWORDS = {"AND", "OR", "NOT", "EXISTS", "FORALL", "TRUE", "FALSE"}

_TOKEN_PATTERN = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>-?\d+(\.\d+)?)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<punct>[(),.=])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class _Token:
    kind: str
    value: str
    position: int


def tokenize(text: str) -> List[_Token]:
    """Split ``text`` into tokens, raising on unexpected characters."""
    tokens: List[_Token] = []
    index = 0
    while index < len(text):
        match = _TOKEN_PATTERN.match(text, index)
        if match is None:
            raise QueryParseError(
                f"unexpected character {text[index]!r} at position {index} in {text!r}"
            )
        kind = match.lastgroup or ""
        value = match.group()
        if kind != "ws":
            if kind == "name" and value.upper() in _KEYWORDS:
                tokens.append(_Token("keyword", value.upper(), index))
            else:
                tokens.append(_Token(kind, value, index))
        index = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, tokens: Sequence[_Token], source: str) -> None:
        self._tokens = list(tokens)
        self._source = source
        self._index = 0

    # ------------------------------------------------------------------ #
    # token helpers
    # ------------------------------------------------------------------ #
    def _peek(self) -> Optional[_Token]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _advance(self) -> _Token:
        token = self._peek()
        if token is None:
            raise QueryParseError(f"unexpected end of query in {self._source!r}")
        self._index += 1
        return token

    def _expect(self, kind: str, value: Optional[str] = None) -> _Token:
        token = self._advance()
        if token.kind != kind or (value is not None and token.value != value):
            expected = value if value is not None else kind
            raise QueryParseError(
                f"expected {expected!r} but found {token.value!r} at position "
                f"{token.position} in {self._source!r}"
            )
        return token

    def _match(self, kind: str, value: Optional[str] = None) -> bool:
        token = self._peek()
        if token is None or token.kind != kind:
            return False
        if value is not None and token.value != value:
            return False
        self._index += 1
        return True

    # ------------------------------------------------------------------ #
    # grammar
    # ------------------------------------------------------------------ #
    def parse(self) -> Formula:
        formula = self._or_expr()
        leftover = self._peek()
        if leftover is not None:
            raise QueryParseError(
                f"unexpected trailing input {leftover.value!r} at position "
                f"{leftover.position} in {self._source!r}"
            )
        return formula

    def _or_expr(self) -> Formula:
        operands = [self._and_expr()]
        while self._match("keyword", "OR"):
            operands.append(self._and_expr())
        if len(operands) == 1:
            return operands[0]
        return Or(tuple(operands))

    def _and_expr(self) -> Formula:
        operands = [self._unary()]
        while self._match("keyword", "AND"):
            operands.append(self._unary())
        if len(operands) == 1:
            return operands[0]
        return And(tuple(operands))

    def _unary(self) -> Formula:
        if self._match("keyword", "NOT"):
            return Not(self._unary())
        token = self._peek()
        if token is not None and token.kind == "keyword" and token.value in ("EXISTS", "FORALL"):
            return self._quantifier()
        return self._primary()

    def _quantifier(self) -> Formula:
        token = self._advance()
        variables = [self._variable()]
        while self._match("punct", ","):
            variables.append(self._variable())
        self._expect("punct", ".")
        body = self._or_expr()
        if token.value == "EXISTS":
            return Exists(tuple(variables), body)
        return ForAll(tuple(variables), body)

    def _variable(self) -> Variable:
        token = self._expect("name")
        if not token.value[0].islower():
            raise QueryParseError(
                f"quantified variable {token.value!r} must start with a "
                f"lowercase letter (position {token.position})"
            )
        return Variable(token.value)

    def _primary(self) -> Formula:
        if self._match("punct", "("):
            inner = self._or_expr()
            self._expect("punct", ")")
            return inner
        if self._match("keyword", "TRUE"):
            return Top()
        if self._match("keyword", "FALSE"):
            return Bottom()
        token = self._peek()
        if token is None:
            raise QueryParseError(f"unexpected end of query in {self._source!r}")
        if token.kind == "name" and self._is_atom_start():
            return self._atom()
        # otherwise: term = term
        left = self._term()
        self._expect("punct", "=")
        right = self._term()
        return Equality(left, right)

    def _is_atom_start(self) -> bool:
        """True if the upcoming tokens are ``NAME (`` (a relational atom)."""
        if self._index + 1 >= len(self._tokens):
            return False
        nxt = self._tokens[self._index + 1]
        return nxt.kind == "punct" and nxt.value == "("

    def _atom(self) -> Atom:
        name = self._expect("name")
        self._expect("punct", "(")
        terms = [self._term()]
        while self._match("punct", ","):
            terms.append(self._term())
        self._expect("punct", ")")
        return Atom(name.value, tuple(terms))

    def _term(self) -> Term:
        token = self._advance()
        if token.kind == "number":
            if "." in token.value:
                return float(token.value)
            return int(token.value)
        if token.kind == "string":
            return token.value[1:-1]
        if token.kind == "name":
            if token.value[0].islower():
                return Variable(token.value)
            return token.value
        raise QueryParseError(
            f"expected a term but found {token.value!r} at position "
            f"{token.position} in {self._source!r}"
        )


def parse_formula(text: str) -> Formula:
    """Parse ``text`` into a :class:`~repro.query.ast.Formula`."""
    return _Parser(tokenize(text), text).parse()


def parse_query(
    text: str,
    answer_variables: Sequence[str] = (),
    name: Optional[str] = None,
    auto_close: bool = True,
) -> Query:
    """Parse ``text`` into a :class:`~repro.query.ast.Query`.

    Parameters
    ----------
    text:
        The formula in the textual syntax described in the module docstring.
    answer_variables:
        Names of the free (answer) variables, in answer-tuple order.
    name:
        Optional label for the query.
    auto_close:
        When True (default), any free variable that is not an answer
        variable is existentially closed, so ``parse_query("R(x, y)")`` is
        the Boolean query ``EXISTS x, y . R(x, y)``.
    """
    formula = parse_formula(text)
    answers = tuple(Variable(variable) for variable in answer_variables)
    if auto_close:
        formula = exists_close(formula, keep_free=answers)
    return Query(formula, answers, name=name)
