"""Abstract syntax for first-order queries.

The paper works with first-order queries ``Q(x̄) = {x̄ | φ}`` over a
relational schema, and with the fragments ∃FO+ (existential positive),
UCQ (unions of conjunctive queries) and CQ (conjunctive queries).  This
module defines an immutable AST covering full FO:

* :class:`Atom` — a relational atom ``R(t1, ..., tn)`` over variables and
  constants,
* :class:`Equality` — ``t1 = t2`` (useful for queries produced by rewriting),
* :class:`And`, :class:`Or`, :class:`Not` — Boolean connectives,
* :class:`Exists`, :class:`ForAll` — quantifiers,
* :class:`Top`, :class:`Bottom` — the trivially true/false formulas.

A *query* (:class:`Query`) pairs a formula with a tuple of free variables
(the answer variables).  Boolean queries have an empty tuple.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterator, Optional, Sequence, Tuple, Union

from ..db.facts import Constant
from ..errors import QueryError

__all__ = [
    "Variable",
    "Term",
    "Formula",
    "Atom",
    "Equality",
    "And",
    "Or",
    "Not",
    "Exists",
    "ForAll",
    "Top",
    "Bottom",
    "Query",
]


@dataclass(frozen=True, order=True)
class Variable:
    """A query variable, e.g. ``Variable("x")``."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise QueryError("a variable must have a non-empty name")

    def __str__(self) -> str:
        return self.name


#: A term is a variable or a constant.
Term = Union[Variable, Constant]


def _render_term(term: Term) -> str:
    if isinstance(term, Variable):
        return term.name
    if isinstance(term, str):
        return repr(term)
    return str(term)


class Formula:
    """Base class for all formula nodes.

    Subclasses are frozen dataclasses; formulas are therefore immutable,
    hashable and safely shareable between queries.
    """

    # -------------------------------------------------------------- #
    # structural accessors implemented per node type
    # -------------------------------------------------------------- #
    def children(self) -> Tuple["Formula", ...]:
        """Immediate subformulas."""
        return ()

    def free_variables(self) -> FrozenSet[Variable]:
        """Variables with a free occurrence in the formula."""
        raise NotImplementedError

    def all_variables(self) -> FrozenSet[Variable]:
        """All variables occurring in the formula, bound or free."""
        variables = set(self.free_variables())
        for child in self.children():
            variables |= child.all_variables()
        return frozenset(variables)

    def atoms(self) -> Tuple["Atom", ...]:
        """All relational atoms in the formula, in syntactic order."""
        collected: list[Atom] = []
        self._collect_atoms(collected)
        return tuple(collected)

    def _collect_atoms(self, accumulator: list) -> None:
        for child in self.children():
            child._collect_atoms(accumulator)

    def relations(self) -> FrozenSet[str]:
        """Relation symbols mentioned in the formula."""
        return frozenset(atom.relation for atom in self.atoms())

    # -------------------------------------------------------------- #
    # convenient connective constructors
    # -------------------------------------------------------------- #
    def __and__(self, other: "Formula") -> "And":
        return And((self, other))

    def __or__(self, other: "Formula") -> "Or":
        return Or((self, other))

    def __invert__(self) -> "Not":
        return Not(self)


@dataclass(frozen=True)
class Atom(Formula):
    """A relational atom ``R(t1, ..., tn)``."""

    relation: str
    terms: Tuple[Term, ...]

    def __post_init__(self) -> None:
        if not self.relation:
            raise QueryError("an atom must name a relation")
        if not isinstance(self.terms, tuple):
            object.__setattr__(self, "terms", tuple(self.terms))
        if len(self.terms) == 0:
            raise QueryError(f"atom over {self.relation!r} must have arguments")

    @property
    def arity(self) -> int:
        return len(self.terms)

    def variables(self) -> Tuple[Variable, ...]:
        """The variables among the atom's terms, in order, with duplicates."""
        return tuple(term for term in self.terms if isinstance(term, Variable))

    def constants(self) -> Tuple[Constant, ...]:
        """The constants among the atom's terms, in order."""
        return tuple(term for term in self.terms if not isinstance(term, Variable))

    def free_variables(self) -> FrozenSet[Variable]:
        return frozenset(self.variables())

    def _collect_atoms(self, accumulator: list) -> None:
        accumulator.append(self)

    def __str__(self) -> str:
        rendered = ", ".join(_render_term(term) for term in self.terms)
        return f"{self.relation}({rendered})"


@dataclass(frozen=True)
class Equality(Formula):
    """An equality atom ``left = right`` between terms."""

    left: Term
    right: Term

    def free_variables(self) -> FrozenSet[Variable]:
        variables = set()
        if isinstance(self.left, Variable):
            variables.add(self.left)
        if isinstance(self.right, Variable):
            variables.add(self.right)
        return frozenset(variables)

    def __str__(self) -> str:
        return f"{_render_term(self.left)} = {_render_term(self.right)}"


@dataclass(frozen=True)
class And(Formula):
    """Conjunction of one or more formulas."""

    operands: Tuple[Formula, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.operands, tuple):
            object.__setattr__(self, "operands", tuple(self.operands))
        if len(self.operands) == 0:
            raise QueryError("And requires at least one operand; use Top() instead")

    def children(self) -> Tuple[Formula, ...]:
        return self.operands

    def free_variables(self) -> FrozenSet[Variable]:
        variables: FrozenSet[Variable] = frozenset()
        for operand in self.operands:
            variables |= operand.free_variables()
        return variables

    def __str__(self) -> str:
        return "(" + " AND ".join(str(operand) for operand in self.operands) + ")"


@dataclass(frozen=True)
class Or(Formula):
    """Disjunction of one or more formulas."""

    operands: Tuple[Formula, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.operands, tuple):
            object.__setattr__(self, "operands", tuple(self.operands))
        if len(self.operands) == 0:
            raise QueryError("Or requires at least one operand; use Bottom() instead")

    def children(self) -> Tuple[Formula, ...]:
        return self.operands

    def free_variables(self) -> FrozenSet[Variable]:
        variables: FrozenSet[Variable] = frozenset()
        for operand in self.operands:
            variables |= operand.free_variables()
        return variables

    def __str__(self) -> str:
        return "(" + " OR ".join(str(operand) for operand in self.operands) + ")"


@dataclass(frozen=True)
class Not(Formula):
    """Negation."""

    operand: Formula

    def children(self) -> Tuple[Formula, ...]:
        return (self.operand,)

    def free_variables(self) -> FrozenSet[Variable]:
        return self.operand.free_variables()

    def __str__(self) -> str:
        return f"NOT {self.operand}"


@dataclass(frozen=True)
class Exists(Formula):
    """Existential quantification over one or more variables."""

    variables: Tuple[Variable, ...]
    operand: Formula

    def __post_init__(self) -> None:
        if not isinstance(self.variables, tuple):
            object.__setattr__(self, "variables", tuple(self.variables))
        if len(self.variables) == 0:
            raise QueryError("Exists must bind at least one variable")

    def children(self) -> Tuple[Formula, ...]:
        return (self.operand,)

    def free_variables(self) -> FrozenSet[Variable]:
        return self.operand.free_variables() - frozenset(self.variables)

    def __str__(self) -> str:
        bound = ", ".join(variable.name for variable in self.variables)
        return f"EXISTS {bound}. {self.operand}"


@dataclass(frozen=True)
class ForAll(Formula):
    """Universal quantification over one or more variables."""

    variables: Tuple[Variable, ...]
    operand: Formula

    def __post_init__(self) -> None:
        if not isinstance(self.variables, tuple):
            object.__setattr__(self, "variables", tuple(self.variables))
        if len(self.variables) == 0:
            raise QueryError("ForAll must bind at least one variable")

    def children(self) -> Tuple[Formula, ...]:
        return (self.operand,)

    def free_variables(self) -> FrozenSet[Variable]:
        return self.operand.free_variables() - frozenset(self.variables)

    def __str__(self) -> str:
        bound = ", ".join(variable.name for variable in self.variables)
        return f"FORALL {bound}. {self.operand}"


@dataclass(frozen=True)
class Top(Formula):
    """The formula that is always true."""

    def free_variables(self) -> FrozenSet[Variable]:
        return frozenset()

    def __str__(self) -> str:
        return "TRUE"


@dataclass(frozen=True)
class Bottom(Formula):
    """The formula that is always false."""

    def free_variables(self) -> FrozenSet[Variable]:
        return frozenset()

    def __str__(self) -> str:
        return "FALSE"


@dataclass(frozen=True)
class Query:
    """A first-order query ``{x̄ | φ}``.

    Parameters
    ----------
    formula:
        The body ``φ``.
    answer_variables:
        The tuple of free variables ``x̄``.  Every answer variable must be
        free in ``φ`` and, conversely, every free variable of ``φ`` must be
        an answer variable (otherwise the query has dangling free variables
        and its semantics would be ambiguous).
    name:
        Optional human-readable label used in reports and benchmarks.
    """

    formula: Formula
    answer_variables: Tuple[Variable, ...] = field(default=())
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if not isinstance(self.answer_variables, tuple):
            object.__setattr__(
                self, "answer_variables", tuple(self.answer_variables)
            )
        free = self.formula.free_variables()
        declared = frozenset(self.answer_variables)
        if len(self.answer_variables) != len(declared):
            raise QueryError(
                f"duplicate answer variables: {self.answer_variables}"
            )
        missing = declared - free
        dangling = free - declared
        if missing:
            raise QueryError(
                f"answer variables {sorted(v.name for v in missing)} do not "
                f"occur free in the query body"
            )
        if dangling:
            raise QueryError(
                f"free variables {sorted(v.name for v in dangling)} are not "
                f"declared as answer variables; bind them with EXISTS/FORALL "
                f"or add them to the answer tuple"
            )

    @property
    def is_boolean(self) -> bool:
        """True iff the query has no answer variables."""
        return len(self.answer_variables) == 0

    @property
    def arity(self) -> int:
        """Number of answer variables."""
        return len(self.answer_variables)

    def atoms(self) -> Tuple[Atom, ...]:
        """Relational atoms of the body."""
        return self.formula.atoms()

    def relations(self) -> FrozenSet[str]:
        """Relations mentioned in the body."""
        return self.formula.relations()

    def __str__(self) -> str:
        head = ", ".join(variable.name for variable in self.answer_variables)
        label = f"{self.name}: " if self.name else ""
        if self.is_boolean:
            return f"{label}{{ () | {self.formula} }}"
        return f"{label}{{ ({head}) | {self.formula} }}"
