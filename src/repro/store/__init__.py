"""The persistence subsystem: backends, content-addressed caches, lineage.

``repro.store`` is where everything durable lives.  It grew out of
``repro.engine.persist`` (which remains as a deprecation shim) when
persistence stopped being a cache bolt-on and became a layer of its own
with three kinds of state:

**Backends** (:mod:`repro.store.backend`)
    A :class:`StoreBackend` is a named-immutable-blob store with atomic
    publication and recency stamps — :class:`FilesystemBackend` in
    production, :class:`MemoryBackend` for tests.  Every store component
    accepts either a directory path or a backend instance.

**Caches** (:mod:`repro.store.caches`)
    :class:`SelectorDiskCache` and :class:`DecompositionDiskCache` persist
    the two expensive engine layers, keyed by snapshot token.  Entries are
    versioned, checksummed, atomically written and garbage-collected by
    age/count — with the tokens of *live* snapshots pinned so GC can never
    force recomputation of active state.

**History** (:mod:`repro.store.catalog`)
    :class:`SnapshotCatalog` persists each name's
    :class:`~repro.db.lineage.Lineage` — the append-only chain of
    ``(digest, parent digest, effective delta, wall time)`` records that
    ``register``/``apply_delta`` produce — plus the **checkpoint markers**
    of compacted chains.  Replaying the chain is what powers time-travel
    (``as_of``) queries and ``repro rollback``.

**Snapshots** (:mod:`repro.store.snapshots`)
    :class:`SnapshotStore` persists whole databases at checkpointed chain
    positions, so deep ``as_of`` replays start at the nearest checkpoint
    instead of the live head or the chain origin.

**Tuning** (:mod:`repro.store.tuning`)
    The self-tuning loop over all of the above: :class:`AccessLog`
    observes replay cost, read frequency and entry bytes with decayed
    counters; a :class:`CheckpointPolicy`
    (:class:`FixedIntervalPolicy` / :class:`AdaptiveCheckpointPolicy`)
    decides where checkpoints appear and disappear; and
    :func:`split_byte_budget` divides one global GC byte budget across
    entry kinds by observed hit-rate-per-byte.

Example — the catalog records a chain that replays to any ancestor:

>>> import tempfile
>>> from repro.db import Database, Delta, PrimaryKeySet, fact
>>> from repro.engine import CountJob, SolverPool
>>> directory = tempfile.mkdtemp()
>>> pool = SolverPool(persist_dir=directory)
>>> pool.register("hr", Database([fact("Employee", 1, "Bob", "HR"),
...                               fact("Employee", 1, "Bob", "IT")]),
...               PrimaryKeySet.from_dict({"Employee": [1]}))
>>> _ = pool.apply_delta("hr", Delta(inserted=[fact("Employee", 2, "Ann", "HR")]))
>>> [record.kind for record in SnapshotCatalog(directory).lineage("hr")]
['register', 'delta']
>>> old = pool.lineage("hr").resolve(-1).digest  # one version ago
>>> pool.run([CountJob(database="hr",
...     query="EXISTS x. Employee(2, x, 'HR')", as_of=old)]).results[0].satisfying
0
"""

from .backend import FilesystemBackend, MemoryBackend, StoreBackend, as_backend
from .caches import (
    CalibrationDiskCache,
    ContentAddressedStore,
    DecompositionDiskCache,
    SelectorDiskCache,
)
from .catalog import SnapshotCatalog
from .format import FORMAT_VERSION, decode_entry, encode_entry, token_prefix
from .snapshots import SnapshotStore
from .tuning import (
    AccessLog,
    AdaptiveCheckpointPolicy,
    CheckpointDecision,
    CheckpointPolicy,
    DecayedCounter,
    FixedIntervalPolicy,
    ManualClock,
    split_byte_budget,
)

__all__ = [
    "FORMAT_VERSION",
    "AccessLog",
    "AdaptiveCheckpointPolicy",
    "CalibrationDiskCache",
    "CheckpointDecision",
    "CheckpointPolicy",
    "ContentAddressedStore",
    "DecayedCounter",
    "DecompositionDiskCache",
    "FilesystemBackend",
    "FixedIntervalPolicy",
    "ManualClock",
    "MemoryBackend",
    "SelectorDiskCache",
    "SnapshotCatalog",
    "SnapshotStore",
    "StoreBackend",
    "as_backend",
    "decode_entry",
    "encode_entry",
    "split_byte_budget",
    "token_prefix",
]
