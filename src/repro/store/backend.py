"""Storage backends: where store entries physically live.

Everything above this module — the content-addressed caches, the snapshot
catalog — manipulates *named immutable blobs* and nothing else.  A
:class:`StoreBackend` supplies exactly that vocabulary:

* ``read(name)`` / ``write(name, blob)`` / ``delete(name)`` — whole-entry
  operations; ``write`` must publish atomically (a reader sees the old
  blob or the new one, never a torn one);
* ``entries(suffix)`` / ``touch(name)`` / ``set_mtime(name, stamp)`` —
  the recency bookkeeping garbage collection runs on.

Two implementations ship: :class:`FilesystemBackend`, the production
backend (one file per entry, temp-file + :func:`os.replace` publication),
and :class:`MemoryBackend`, a dict-backed backend with the same contract
for tests and ephemeral stores.  :func:`as_backend` coerces the
``Union[str, Path, StoreBackend]`` arguments the store classes accept.

>>> backend = MemoryBackend()
>>> backend.write("x.bin", b"blob")
True
>>> backend.read("x.bin")
b'blob'
>>> [name for _, name in backend.entries(".bin")]
['x.bin']
>>> backend.delete("x.bin"), backend.read("x.bin")
(True, None)
"""

from __future__ import annotations

import abc
import os
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

__all__ = ["StoreBackend", "FilesystemBackend", "MemoryBackend", "as_backend"]


class StoreBackend(abc.ABC):
    """The named-immutable-blob contract every store component builds on."""

    @abc.abstractmethod
    def read(self, name: str) -> Optional[bytes]:
        """The blob stored under ``name``, or ``None`` if absent/unreadable."""

    @abc.abstractmethod
    def write(self, name: str, blob: bytes) -> bool:
        """Atomically publish ``blob`` under ``name``; False on I/O failure.

        Failures are non-fatal by contract: the store is an accelerator
        plus a history log, and a full disk must never fail a counting job.
        """

    @abc.abstractmethod
    def delete(self, name: str) -> bool:
        """Remove the entry ``name`` (best-effort); True iff it was removed."""

    def exists(self, name: str) -> bool:
        """Whether an entry ``name`` is present, without reading its blob.

        The default reads and discards; backends override with a cheap
        probe (a stat, a dict lookup).  Presence says nothing about
        soundness — decoding still validates.
        """
        return self.read(name) is not None

    @abc.abstractmethod
    def entries(self, suffix: str) -> List[Tuple[float, str]]:
        """All ``(mtime, name)`` pairs whose name ends with ``suffix``."""

    def size(self, name: str) -> Optional[int]:
        """The stored byte size of ``name``, or ``None`` if absent.

        The default reads and measures; backends override with a cheap
        probe (a stat, a dict lookup).  Byte-budgeted garbage collection
        and the per-layer ``bytes`` statistics are built on this.
        """
        blob = self.read(name)
        return len(blob) if blob is not None else None

    @abc.abstractmethod
    def set_mtime(self, name: str, stamp: float) -> None:
        """Force the recency stamp of an entry (GC tests and backdating)."""

    def touch(self, name: str) -> None:
        """Refresh the recency stamp of ``name`` to *now* (best-effort)."""
        self.set_mtime(name, time.time())

    @property
    def directory(self) -> Optional[Path]:
        """The backing directory, for backends that have one (else None).

        Worker processes re-open filesystem stores through this path; a
        memory backend returns ``None`` and is process-local by nature.
        """
        return None


class FilesystemBackend(StoreBackend):
    """One file per entry inside a directory; atomic temp-file publication."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)

    @property
    def directory(self) -> Path:
        return self._directory

    def read(self, name: str) -> Optional[bytes]:
        try:
            return (self._directory / name).read_bytes()
        except OSError:
            return None

    def write(self, name: str, blob: bytes) -> bool:
        try:
            handle = tempfile.NamedTemporaryFile(
                dir=self._directory, prefix=".tmp-", delete=False
            )
            try:
                with handle:
                    handle.write(blob)
                os.replace(handle.name, self._directory / name)
            except BaseException:
                try:
                    os.unlink(handle.name)
                except OSError:
                    pass
                raise
        except OSError:
            return False
        return True

    def delete(self, name: str) -> bool:
        try:
            (self._directory / name).unlink()
            return True
        except OSError:  # pragma: no cover - unlink race / readonly dir
            return False

    def exists(self, name: str) -> bool:
        return (self._directory / name).is_file()

    def entries(self, suffix: str) -> List[Tuple[float, str]]:
        collected: List[Tuple[float, str]] = []
        for path in self._directory.glob(f"*{suffix}"):
            try:
                collected.append((path.stat().st_mtime, path.name))
            except OSError:  # pragma: no cover - concurrent unlink
                continue
        return collected

    def size(self, name: str) -> Optional[int]:
        try:
            return (self._directory / name).stat().st_size
        except OSError:
            return None

    def set_mtime(self, name: str, stamp: float) -> None:
        try:
            os.utime(self._directory / name, (stamp, stamp))
        except OSError:  # pragma: no cover - concurrent unlink / readonly dir
            pass

    def __repr__(self) -> str:
        return f"FilesystemBackend({str(self._directory)!r})"


class MemoryBackend(StoreBackend):
    """A process-local dict with the same contract, for tests and scratch.

    Writes are trivially atomic (one dict assignment) and recency is kept
    per entry, so garbage-collection semantics match the filesystem
    backend exactly.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, Tuple[bytes, float]] = {}

    def read(self, name: str) -> Optional[bytes]:
        entry = self._entries.get(name)
        return entry[0] if entry is not None else None

    def write(self, name: str, blob: bytes) -> bool:
        self._entries[name] = (bytes(blob), time.time())
        return True

    def delete(self, name: str) -> bool:
        return self._entries.pop(name, None) is not None

    def exists(self, name: str) -> bool:
        return name in self._entries

    def entries(self, suffix: str) -> List[Tuple[float, str]]:
        return [
            (stamp, name)
            for name, (_, stamp) in self._entries.items()
            if name.endswith(suffix)
        ]

    def size(self, name: str) -> Optional[int]:
        entry = self._entries.get(name)
        return len(entry[0]) if entry is not None else None

    def set_mtime(self, name: str, stamp: float) -> None:
        entry = self._entries.get(name)
        if entry is not None:
            self._entries[name] = (entry[0], stamp)

    def __repr__(self) -> str:
        return f"MemoryBackend(<{len(self._entries)} entries>)"


def as_backend(store: Union[str, Path, StoreBackend]) -> StoreBackend:
    """Coerce a directory path (or an existing backend) into a backend."""
    if isinstance(store, StoreBackend):
        return store
    return FilesystemBackend(store)
