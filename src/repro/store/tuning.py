"""Cost-model-driven self-tuning of the storage/replay layer.

PR 5 shipped every *mechanism* the store needs to tune itself —
:meth:`~repro.db.lineage.Lineage.replay_distance` as a queryable cost
model, per-layer cache statistics, GC eviction counters, fixed
``checkpoint_every=K`` compaction — but nothing closed the loop.  This
module is the loop:

* :class:`DecayedCounter` — an exponentially-decayed event counter with
  an injectable clock, so "how often is this read *lately*" is a number,
  deterministically testable.
* :class:`AccessLog` — the observation layer: per-``(name, digest)``
  decayed read rates, a per-name EWMA of the measured *per-delta replay
  cost*, and per-name snapshot byte estimates refined from actual stores.
* :class:`CheckpointPolicy` — the decision interface the lineage service
  consults after every ``as_of`` replay and every recorded delta.  Two
  implementations ship: :class:`FixedIntervalPolicy` (the exact every-K
  behaviour ``checkpoint_every`` always had) and
  :class:`AdaptiveCheckpointPolicy`, which cuts a checkpoint at a chain
  position only when the modeled saving
  ``expected_reads x replay_distance x per_step_cost`` exceeds the
  modeled byte cost of materialising it — and demotes checkpoints whose
  read rate has decayed away.
* :func:`split_byte_budget` — the GC half of the loop: split one global
  byte budget across entry kinds (``*.sel`` / ``*.dec`` / ``*.snp`` /
  ``*.cal``) proportional to each kind's observed hit-rate-per-byte,
  with water-filling so a kind never receives more budget than it uses.

Everything here is deliberately free of store/engine imports (plain data
in, plain decisions out), so the policies pickle cleanly across the
shard-worker process boundary.

>>> clock = ManualClock(0.0)
>>> counter = DecayedCounter(half_life=10.0, clock=clock)
>>> counter.add(); counter.add()
>>> round(counter.value(), 3)
2.0
>>> clock.advance(10.0)  # one half-life later, half the mass remains
>>> round(counter.value(), 3)
1.0
>>> split_byte_budget(100, {"a": (9.0, 30), "b": (1.0, 1000)})
{'a': 30, 'b': 70}
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Set, Tuple

__all__ = [
    "AccessLog",
    "budget_usage",
    "AdaptiveCheckpointPolicy",
    "CheckpointDecision",
    "CheckpointPolicy",
    "DecayedCounter",
    "FixedIntervalPolicy",
    "ManualClock",
    "split_byte_budget",
]

Clock = Callable[[], float]


class ManualClock:
    """A deterministic clock for tests: call it, advance it, set it.

    >>> clock = ManualClock(5.0)
    >>> clock()
    5.0
    >>> clock.advance(2.5); clock()
    7.5
    """

    def __init__(self, now: float = 0.0) -> None:
        self.now = float(now)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class DecayedCounter:
    """An event counter whose mass halves every ``half_life`` seconds.

    ``add`` deposits mass at the current clock reading; ``value`` reports
    the remaining (exponentially decayed) mass.  The decay is applied
    lazily — the counter stores one ``(mass, stamp)`` pair, so it is O(1)
    in space and per operation, and pickles as plain state.
    """

    def __init__(self, half_life: float = 600.0, clock: Clock = time.time) -> None:
        if half_life <= 0:
            raise ValueError(f"half_life must be > 0, got {half_life}")
        self._half_life = half_life
        self._clock = clock
        self._mass = 0.0
        self._stamp = clock()

    def _decay_to_now(self) -> None:
        now = self._clock()
        elapsed = now - self._stamp
        if elapsed > 0:
            self._mass *= 0.5 ** (elapsed / self._half_life)
            self._stamp = now

    def add(self, amount: float = 1.0) -> None:
        """Deposit ``amount`` of mass at the current time."""
        self._decay_to_now()
        self._mass += amount

    def value(self) -> float:
        """The decayed mass as of now."""
        self._decay_to_now()
        return self._mass

    def __repr__(self) -> str:
        return f"DecayedCounter(value={self.value():.3f}, half_life={self._half_life})"


class AccessLog:
    """The observation layer: what gets read, how deep, and at what cost.

    Three families of observations, all fed by the lineage service:

    * **read rates** — a :class:`DecayedCounter` per ``(name, digest)``,
      bumped on every ``as_of`` resolution of that digest (cache hits
      included: a hit is still evidence the digest is hot);
    * **per-step replay cost** — an EWMA over ``elapsed / distance`` of
      every replay that actually walked deltas, per name (replay cost is
      a property of the database's size and delta shape, not of one
      digest);
    * **snapshot bytes** — a running mean of the observed ``*.snp``
      entry sizes per name, refined after every checkpoint store, used
      to price a prospective checkpoint before it exists.
    """

    def __init__(self, half_life: float = 600.0, clock: Clock = time.time) -> None:
        self._half_life = half_life
        self._clock = clock
        self._reads: Dict[Tuple[str, str], DecayedCounter] = {}
        self._step_cost: Dict[str, float] = {}
        self._byte_mean: Dict[str, float] = {}
        self._byte_samples: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # feeding
    # ------------------------------------------------------------------ #
    def record_read(
        self, name: str, digest: str, distance: int, elapsed: float
    ) -> None:
        """Observe one ``as_of`` resolution of ``digest``.

        ``distance`` is the delta count the replay walked (0 for a
        memory/checkpoint hit); ``elapsed`` the wall-clock seconds it
        took.  Only replays with ``distance > 0`` update the per-step
        cost model.
        """
        counter = self._reads.get((name, digest))
        if counter is None:
            counter = DecayedCounter(self._half_life, self._clock)
            self._reads[(name, digest)] = counter
        counter.add()
        if distance > 0 and elapsed >= 0:
            step = elapsed / distance
            previous = self._step_cost.get(name)
            # EWMA with alpha = 0.3: responsive to drift, stable under noise.
            self._step_cost[name] = (
                step if previous is None else 0.7 * previous + 0.3 * step
            )

    def record_snapshot_bytes(self, name: str, size: int) -> None:
        """Refine the snapshot byte estimate of ``name`` after a store."""
        samples = self._byte_samples.get(name, 0)
        mean = self._byte_mean.get(name, 0.0)
        self._byte_mean[name] = (mean * samples + size) / (samples + 1)
        self._byte_samples[name] = samples + 1

    # ------------------------------------------------------------------ #
    # the model
    # ------------------------------------------------------------------ #
    def read_rate(self, name: str, digest: str) -> float:
        """The decayed read count of ``(name, digest)`` (0.0 if never read)."""
        counter = self._reads.get((name, digest))
        return counter.value() if counter is not None else 0.0

    def step_cost(self, name: str) -> float:
        """The EWMA per-delta replay cost of ``name`` in seconds (0.0 cold)."""
        return self._step_cost.get(name, 0.0)

    def byte_estimate(self, name: str) -> float:
        """The mean observed snapshot byte size of ``name`` (0.0 cold)."""
        return self._byte_mean.get(name, 0.0)

    def modeled_saving(self, name: str, digest: str, distance: int) -> float:
        """``expected_reads x replay_distance x per_step_cost`` in seconds.

        The projected replay seconds per decay window that a checkpoint
        at ``digest`` would erase — the left-hand side of the adaptive
        policy's cut rule.
        """
        return self.read_rate(name, digest) * distance * self.step_cost(name)

    def digests_read(self, name: str) -> Tuple[str, ...]:
        """Every digest of ``name`` with a (possibly decayed-away) counter."""
        return tuple(
            digest for (owner, digest) in self._reads if owner == name
        )


@dataclass(frozen=True)
class CheckpointDecision:
    """What a policy wants done after one observation.

    ``promote`` lists digests to checkpoint *now* (the lineage service
    only honours digests it holds materialised — in practice the digest
    just replayed); ``demote`` lists checkpointed digests whose snapshot
    entry and marker should be dropped; ``checkpoint_head`` asks for the
    classic cut-at-the-head compaction checkpoint.
    """

    promote: Tuple[str, ...] = ()
    demote: Tuple[str, ...] = ()
    checkpoint_head: bool = False

    def __bool__(self) -> bool:
        return bool(self.promote or self.demote or self.checkpoint_head)


#: The do-nothing decision, shared.
NO_DECISION = CheckpointDecision()


class CheckpointPolicy(abc.ABC):
    """Where checkpoints appear (and disappear) on a lineage chain.

    The lineage service consults the policy at its two observation
    points: :meth:`after_read` once per ``as_of`` resolution (with the
    measured replay distance and elapsed time) and :meth:`after_delta`
    once per recorded effective delta.  Policies are plain picklable
    objects — they travel to shard workers inside the process-pool
    initargs.
    """

    @abc.abstractmethod
    def after_read(
        self,
        name: str,
        head_digest: str,
        digest: str,
        checkpointed: Set[str],
        distance: int,
        elapsed: float,
    ) -> CheckpointDecision:
        """React to one resolved ``as_of`` read of ``digest``."""

    @abc.abstractmethod
    def after_delta(
        self,
        name: str,
        chain_kinds: Tuple[str, ...],
        checkpointed_sequences: Set[int],
    ) -> CheckpointDecision:
        """React to one recorded delta.

        ``chain_kinds`` is the record-kind sequence of the chain (oldest
        first) and ``checkpointed_sequences`` the checkpointed positions,
        which is all an interval policy needs; adaptive policies keep
        their own observations.
        """


class FixedIntervalPolicy(CheckpointPolicy):
    """Cut a head checkpoint every ``every`` effective deltas.

    Exactly the behaviour ``checkpoint_every=K`` always had: count the
    *trailing run* of delta records — stopping at the newest checkpointed
    position or at any non-delta record (a rollback or re-registration
    restarts the count) — and checkpoint the head once ``every`` of them
    have accumulated.  Reads never cut or demote anything.

    >>> policy = FixedIntervalPolicy(2)
    >>> policy.after_delta("live", ("register", "delta"), set()).checkpoint_head
    False
    >>> policy.after_delta("live", ("register", "delta", "delta"),
    ...                    set()).checkpoint_head
    True
    """

    def __init__(self, every: int) -> None:
        if every < 1:
            raise ValueError(f"checkpoint interval must be >= 1, got {every}")
        self.every = every

    def after_read(
        self,
        name: str,
        head_digest: str,
        digest: str,
        checkpointed: Set[str],
        distance: int,
        elapsed: float,
    ) -> CheckpointDecision:
        return NO_DECISION

    def after_delta(
        self,
        name: str,
        chain_kinds: Tuple[str, ...],
        checkpointed_sequences: Set[int],
    ) -> CheckpointDecision:
        pending = 0
        for sequence in range(len(chain_kinds) - 1, -1, -1):
            if (
                sequence in checkpointed_sequences
                or chain_kinds[sequence] != "delta"
            ):
                break
            pending += 1
        if pending >= self.every:
            return CheckpointDecision(checkpoint_head=True)
        return NO_DECISION

    def __repr__(self) -> str:
        return f"FixedIntervalPolicy(every={self.every})"


class AdaptiveCheckpointPolicy(CheckpointPolicy):
    """Cut checkpoints where the observed workload says the bytes pay.

    After each ``as_of`` replay the policy feeds its :class:`AccessLog`
    and scores the position just read:

    ``read_rate x distance x step_cost  >  byte_cost x snapshot_bytes``

    — the projected replay seconds a checkpoint there would erase per
    decay window, against the priced byte cost of materialising it.
    ``byte_cost`` is in seconds-per-byte; ``0.0`` (the default) means
    bytes are free and any repeatedly-replayed position at distance >=
    ``min_distance`` earns a checkpoint — the GC byte budget, not the
    cut rule, then bounds the snapshot footprint.  ``min_distance``
    keeps near-head reads (cheap replays from the in-memory head) from
    being materialised at all.

    Checkpoints the policy has promoted are **demoted** again when their
    decayed read rate falls below ``demote_below`` (``None`` disables
    demotion): the snapshot entry and its catalog marker are dropped, so
    cold checkpoints stop occupying budget that hot ones could use.

    Deltas never cut checkpoints here — placement is driven purely by
    observed reads, which is what keeps the snapshot footprint lean on
    write-heavy chains.
    """

    def __init__(
        self,
        byte_cost: float = 0.0,
        min_distance: int = 2,
        min_rate: float = 0.0,
        demote_below: Optional[float] = None,
        half_life: float = 600.0,
        clock: Clock = time.time,
    ) -> None:
        if byte_cost < 0:
            raise ValueError(f"byte_cost must be >= 0, got {byte_cost}")
        if min_distance < 1:
            raise ValueError(f"min_distance must be >= 1, got {min_distance}")
        self.byte_cost = byte_cost
        self.min_distance = min_distance
        self.min_rate = min_rate
        self.demote_below = demote_below
        self.log = AccessLog(half_life=half_life, clock=clock)
        #: Digests this policy promoted (only these are ever demoted, so
        #: explicit/interval checkpoints cut by the operator stay put).
        self._promoted: Set[str] = set()

    def after_read(
        self,
        name: str,
        head_digest: str,
        digest: str,
        checkpointed: Set[str],
        distance: int,
        elapsed: float,
    ) -> CheckpointDecision:
        self.log.record_read(name, digest, distance, elapsed)
        promote: Tuple[str, ...] = ()
        if (
            digest not in checkpointed
            and digest != head_digest
            and distance >= self.min_distance
            and self.log.read_rate(name, digest) > self.min_rate
            and self.log.modeled_saving(name, digest, distance)
            > self.byte_cost * self.log.byte_estimate(name)
        ):
            promote = (digest,)
            self._promoted.add(digest)
        return CheckpointDecision(
            promote=promote, demote=self._stale(name, checkpointed, head_digest)
        )

    def after_delta(
        self,
        name: str,
        chain_kinds: Tuple[str, ...],
        checkpointed_sequences: Set[int],
    ) -> CheckpointDecision:
        return NO_DECISION

    def observe_snapshot_bytes(self, name: str, size: int) -> None:
        """Feed back the actual byte size of a stored checkpoint."""
        self.log.record_snapshot_bytes(name, size)

    def _stale(
        self, name: str, checkpointed: Set[str], head_digest: str
    ) -> Tuple[str, ...]:
        if self.demote_below is None:
            return ()
        return tuple(
            digest
            for digest in sorted(checkpointed & self._promoted)
            if digest != head_digest
            and self.log.read_rate(name, digest) < self.demote_below
        )

    def __repr__(self) -> str:
        return (
            f"AdaptiveCheckpointPolicy(byte_cost={self.byte_cost}, "
            f"min_distance={self.min_distance}, "
            f"demote_below={self.demote_below})"
        )


def split_byte_budget(
    total: int, usage: Mapping[str, Tuple[float, int]]
) -> Dict[str, int]:
    """Split one global byte budget across entry kinds by hit-rate-per-byte.

    ``usage`` maps each kind to ``(decayed_hit_rate, current_bytes)``.
    The split is proportional to ``hit_rate / bytes`` — a kind earning
    the same hits from 10x the bytes gets a tenth of the weight — with
    **water-filling**: a kind is never allocated more than it currently
    uses, and the surplus is redistributed among the still-hungry kinds
    by the same weights.  Kinds with no hits anywhere fall back to a
    split proportional to current bytes (so an under-budget store evicts
    nothing just because it is cold).

    >>> split_byte_budget(100, {"hot": (10.0, 50), "cold": (0.1, 500)})
    {'hot': 50, 'cold': 50}
    >>> split_byte_budget(300, {"a": (0.0, 100), "b": (0.0, 200)})
    {'a': 100, 'b': 200}
    """
    if total < 0:
        raise ValueError(f"byte budget must be >= 0, got {total}")
    shares: Dict[str, int] = {kind: 0 for kind in usage}
    hungry: Dict[str, Tuple[float, int]] = {
        kind: (rate, size) for kind, (rate, size) in usage.items() if size > 0
    }
    remaining = float(total)
    while hungry and remaining >= 1.0:
        weights = {
            kind: (rate / size if rate > 0 else 0.0)
            for kind, (rate, size) in hungry.items()
        }
        if not any(weights.values()):
            # Nothing observed: keep what exists, proportionally by size.
            weights = {kind: float(size) for kind, (_, size) in hungry.items()}
        scale = sum(weights.values())
        allocation = {
            kind: remaining * weight / scale for kind, weight in weights.items()
        }
        capped = [
            kind
            for kind in hungry
            if allocation[kind] >= hungry[kind][1]
        ]
        if not capped:
            for kind in hungry:
                shares[kind] += int(allocation[kind])
            break
        for kind in capped:
            size = hungry[kind][1]
            shares[kind] += size
            remaining -= size
            del hungry[kind]
    return shares


def budget_usage(
    layers: Mapping[str, object]
) -> Dict[str, Tuple[float, int]]:
    """The ``(decayed_hit_rate, bytes)`` usage map of a set of stores.

    A convenience for callers holding the cache coordinator's disk-layer
    map; each store must expose ``decayed_hit_rate()`` and
    ``total_bytes()`` (every :class:`~repro.store.ContentAddressedStore`
    does).
    """
    return {
        kind: (store.decayed_hit_rate(), store.total_bytes())  # type: ignore[attr-defined]
        for kind, store in layers.items()
    }
