"""The shared on-disk entry format of the store subsystem.

Every persisted entry — cache payloads and snapshot-catalog records alike
— is one self-validating blob::

    magic (4 bytes) | format version (4 bytes, big-endian)
    | SHA-256 checksum of the payload (32 bytes) | payload

The four-byte magic identifies the entry *kind* (selector, decomposition,
catalog record), the version gates compatibility (entries written by an
incompatible library version are misses, never errors), and the checksum
makes truncation and bit-flips detectable.  :func:`encode_entry` and
:func:`decode_entry` are the only two functions that touch this layout,
so every store component inherits the same crash-safety story.

>>> blob = encode_entry(b"TEST", b"payload")
>>> decode_entry(b"TEST", blob)
b'payload'
>>> decode_entry(b"TEST", blob[:-1]) is None  # truncated: checksum fails
True
>>> decode_entry(b"OTHR", blob) is None  # wrong kind: magic fails
True
"""

from __future__ import annotations

import hashlib
from typing import Optional, Tuple

__all__ = ["FORMAT_VERSION", "encode_entry", "decode_entry", "token_prefix"]

#: Bump when the entry layout, the entry *naming* scheme or the pickled
#: payload types change shape.  Version 2 moved the caches into
#: :mod:`repro.store` and prefixed entry names with the snapshot-token
#: hash (the hook garbage-collection pinning works through).
FORMAT_VERSION = 2

#: magic + version + checksum
_HEADER_LENGTH = 4 + 4 + 32


def encode_entry(magic: bytes, payload: bytes) -> bytes:
    """Frame a payload with the magic/version/checksum header."""
    if len(magic) != 4:
        raise ValueError(f"entry magic must be 4 bytes, got {magic!r}")
    return (
        magic
        + FORMAT_VERSION.to_bytes(4, "big")
        + hashlib.sha256(payload).digest()
        + payload
    )


def decode_entry(magic: bytes, blob: bytes) -> Optional[bytes]:
    """Return the validated payload, or ``None`` for anything unsound.

    ``None`` covers every way an entry can be bad — wrong magic, version
    skew, truncation, bit-flips — because a store entry is an accelerator,
    and a damaged one must read as *cold*, never as an error.
    """
    if len(blob) < _HEADER_LENGTH or not blob.startswith(magic):
        return None
    version = int.from_bytes(blob[4:8], "big")
    if version != FORMAT_VERSION:
        return None
    checksum, payload = blob[8:40], blob[40:]
    if hashlib.sha256(payload).digest() != checksum:
        return None
    return payload


def token_prefix(snapshot_token: Tuple[str, str]) -> str:
    """The 16-hex-character entry-name prefix of a snapshot token.

    Entry names start with this prefix so that everything derived from one
    snapshot is recognisable *from the name alone* — which is what lets
    garbage collection pin the entries of live snapshots without opening
    (or even being able to decode) them.

    >>> token_prefix(("a" * 64, "b" * 64)) == token_prefix(("a" * 64, "b" * 64))
    True
    >>> len(token_prefix(("a" * 64, "b" * 64)))
    16
    """
    database_digest, keys_digest = snapshot_token
    material = f"{database_digest}\x1f{keys_digest}"
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]
