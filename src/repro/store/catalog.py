"""The snapshot catalog: a persisted, append-only lineage log per name.

The engine's in-memory :class:`~repro.db.lineage.Lineage` dies with the
process; the catalog is its durable half.  Every
:class:`~repro.db.lineage.LineageRecord` a pool appends — registrations,
effective deltas, rollbacks — is written as its *own* immutable entry
(``.rec``), named by ``(name, sequence)``, through the same framed,
checksummed, atomically-published format as the cache entries.  Appending
never rewrites history: a crash mid-append loses at most the newest
record, and a corrupt record truncates the *loaded* chain at that point —
its successors are purged along with it, so the truncation is permanent
and a later append can never splice stale records back in.  Damaged
history is lost history, never wrong data (replay is digest-verified on
top).

Catalog entries share the store directory with the caches but use their
own suffix, so cache garbage collection never touches them; history is
small (one record per update) and is deliberately never GC'd.

The catalog also records **checkpoints** — chain positions whose full
database snapshot has been persisted (see
:mod:`repro.store.snapshots`) so deep replays can start nearby.  A
:class:`~repro.db.lineage.CheckpointRecord` is its own immutable ``.ckp``
entry keyed by ``(name, sequence)``; loading validates each one against
the loaded chain (same sequence, same digest), so a checkpoint of a
truncated-and-rewritten slot can never annotate the wrong record.

>>> import tempfile
>>> from repro.db import LineageRecord
>>> catalog = SnapshotCatalog(tempfile.mkdtemp())
>>> catalog.append(LineageRecord(
...     "live", 0, "a" * 64, "b" * 64, None, "register", None, 0.0))
True
>>> chain = catalog.lineage("live")
>>> (chain.name, len(chain), chain.head.kind)
('live', 1, 'register')
>>> len(catalog.lineage("never-registered"))
0
"""

from __future__ import annotations

import hashlib
import pickle
from pathlib import Path
from typing import Optional, Tuple, Union

from ..db.lineage import CheckpointRecord, Lineage, LineageRecord
from ..errors import StoreError
from .backend import StoreBackend, as_backend
from .format import FORMAT_VERSION, decode_entry, encode_entry

__all__ = ["SnapshotCatalog"]

_MAGIC = b"RCAT"
_SUFFIX = ".rec"
_CHECKPOINT_MAGIC = b"RCKP"
_CHECKPOINT_SUFFIX = ".ckp"


class SnapshotCatalog:
    """Append-only persisted lineage, one immutable entry per record.

    Multi-process safe the same way the caches are: shards own disjoint
    names (single writer per chain), and racing writers of the *same*
    record — e.g. several workers registering identical content — publish
    byte-equivalent history, so "last atomic write wins" is harmless.
    """

    def __init__(self, store: Union[str, Path, StoreBackend]) -> None:
        self._backend = as_backend(store)
        self.appends = 0
        self.corrupt = 0
        self.truncated = 0

    @property
    def backend(self) -> StoreBackend:
        """The backend holding the record entries."""
        return self._backend

    @staticmethod
    def entry_name(name: str, sequence: int) -> str:
        """The entry name of one ``(name, sequence)`` chain position."""
        material = "\x1f".join([f"v{FORMAT_VERSION}", "catalog", name, str(sequence)])
        return hashlib.sha256(material.encode("utf-8")).hexdigest() + _SUFFIX

    # ------------------------------------------------------------------ #
    # append / load
    # ------------------------------------------------------------------ #
    def append(self, record: LineageRecord) -> bool:
        """Persist one record atomically; returns False on I/O failure.

        Like cache stores, persistence failures are non-fatal: the live
        process keeps its in-memory lineage, and a lost record only makes
        *future* processes' history shorter (replay stays digest-verified
        either way).  Appending a record that does not belong at its
        sequence slot's chain is the caller's bug and raises
        :class:`~repro.errors.StoreError`.
        """
        if not isinstance(record, LineageRecord):
            raise StoreError(
                f"the catalog stores LineageRecords, got {type(record).__name__}"
            )
        payload = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        written = self._backend.write(
            self.entry_name(record.name, record.sequence),
            encode_entry(_MAGIC, payload),
        )
        if written:
            self.appends += 1
        return written

    def lineage(self, name: str) -> Lineage:
        """The persisted chain of ``name`` (empty if never recorded).

        Records are read in sequence order until the first missing or
        undecodable entry — a damaged record *truncates* the loaded
        history there rather than erroring, mirroring the caches'
        corruption tolerance.  Truncation is made permanent: the damaged
        record's successors are purged too, so a later append (which
        reuses the freed sequence slot) can never splice stale records
        with broken parent links back into a loaded chain.
        """
        records = []
        sequence = 0
        while True:
            record, damaged = self._load_record(name, sequence)
            if record is None:
                if damaged:
                    self._purge_from(name, sequence)
                break
            records.append(record)
            sequence += 1
        return Lineage(name, tuple(records))

    def _load_record(
        self, name: str, sequence: int
    ) -> Tuple[Optional[LineageRecord], bool]:
        """One ``(record, was_damaged)`` chain slot; (None, False) = end."""
        entry_name = self.entry_name(name, sequence)
        blob = self._backend.read(entry_name)
        if blob is None:
            return None, False
        payload = decode_entry(_MAGIC, blob)
        record: object = None
        if payload is not None:
            try:
                record = pickle.loads(payload)
            except Exception:  # noqa: BLE001 - unpickling failure is corruption
                record = None
        if (
            not isinstance(record, LineageRecord)
            or record.name != name
            or record.sequence != sequence
        ):
            self.corrupt += 1
            self._backend.delete(entry_name)
            return None, True
        return record, False

    def _purge_from(self, name: str, sequence: int) -> None:
        """Delete the stored records of ``name`` from ``sequence`` on.

        ``sequence`` is the damaged slot: its record entry was already
        deleted by the loader, so deletion of record entries starts one
        past it — but its checkpoint marker (and those of every purged
        successor) is swept here, so truncation never strands orphan
        ``.ckp`` entries in the store.
        """
        self._backend.delete(self.checkpoint_entry_name(name, sequence))
        sequence += 1
        while self._backend.delete(self.entry_name(name, sequence)):
            self.truncated += 1
            self._backend.delete(self.checkpoint_entry_name(name, sequence))
            sequence += 1

    # ------------------------------------------------------------------ #
    # checkpoints
    # ------------------------------------------------------------------ #
    @staticmethod
    def checkpoint_entry_name(name: str, sequence: int) -> str:
        """The entry name of one ``(name, sequence)`` checkpoint marker."""
        material = "\x1f".join(
            [f"v{FORMAT_VERSION}", "checkpoint", name, str(sequence)]
        )
        return (
            hashlib.sha256(material.encode("utf-8")).hexdigest()
            + _CHECKPOINT_SUFFIX
        )

    def record_checkpoint(self, record: CheckpointRecord) -> bool:
        """Persist one checkpoint marker atomically; False on I/O failure.

        Like lineage appends, persistence failures are non-fatal — a lost
        marker only means future processes replay further.
        """
        if not isinstance(record, CheckpointRecord):
            raise StoreError(
                f"the catalog records CheckpointRecords here, "
                f"got {type(record).__name__}"
            )
        payload = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        return self._backend.write(
            self.checkpoint_entry_name(record.name, record.sequence),
            encode_entry(_CHECKPOINT_MAGIC, payload),
        )

    def checkpoints(
        self, name: str, chain: Optional[Lineage] = None
    ) -> Tuple[CheckpointRecord, ...]:
        """The persisted checkpoint markers of ``name``, oldest first.

        Each marker is validated against the loaded chain: it must
        annotate a record with the *same* sequence and digest.  A marker
        left over from a truncated-and-rewritten slot (or otherwise
        damaged) is deleted best-effort and skipped — so a returned
        checkpoint always names a real, replay-reachable chain position.
        """
        if chain is None:
            chain = self.lineage(name)
        found = []
        for record in chain:
            entry_name = self.checkpoint_entry_name(name, record.sequence)
            blob = self._backend.read(entry_name)
            if blob is None:
                continue
            payload = decode_entry(_CHECKPOINT_MAGIC, blob)
            marker: object = None
            if payload is not None:
                try:
                    marker = pickle.loads(payload)
                except Exception:  # noqa: BLE001 - unpickling failure is corruption
                    marker = None
            if (
                not isinstance(marker, CheckpointRecord)
                or marker.name != name
                or marker.sequence != record.sequence
                or marker.digest != record.digest
                or marker.keys_digest != record.keys_digest
            ):
                self.corrupt += 1
                self._backend.delete(entry_name)
                continue
            found.append(marker)
        return tuple(found)

    def remove_checkpoint(self, name: str, sequence: int) -> bool:
        """Delete one checkpoint marker (demotion); True iff it was removed.

        The catalog half of checkpoint demotion: the snapshot entry is
        dropped by the caller through the snapshot store, and the marker
        goes here so a later process never advertises a checkpoint whose
        payload was deliberately released.  Lineage records are untouched
        — demotion changes replay *cost*, never history.
        """
        return self._backend.delete(self.checkpoint_entry_name(name, sequence))

    def entry_count(self) -> int:
        """Number of record entries currently stored (across all names)."""
        return len(self._backend.entries(_SUFFIX))

    def __repr__(self) -> str:
        return f"SnapshotCatalog({self._backend!r}, appends={self.appends})"
