"""Persisted full-database snapshots: the checkpoint payloads.

The caches (:mod:`repro.store.caches`) persist *derived* state — selector
preparations and block decompositions.  Checkpoint compaction needs one
more kind of entry: the **database itself**, stored whole, so that
:meth:`~repro.db.lineage.Lineage.materialise` can start a replay at a
checkpointed chain position instead of at the live head or the chain
origin.

A :class:`SnapshotStore` persists the sorted fact sequence of a frozen
database keyed by its snapshot token, through the same framed, versioned,
checksummed, atomically-published format as every other store entry
(``*.snp`` suffix, ``RSNP`` magic).  Loads are **digest-verified**: the
rebuilt database's ``content_digest`` must equal the token's database
digest, so a damaged or mismatched entry reads as a miss — replay then
falls back to a longer delta walk (cold, never wrong).

Snapshot entries are GC'd like cache entries (age/count bounds, pinned
live tokens exempt); an evicted checkpoint only lengthens future replays.

>>> import tempfile
>>> from repro.db import Database, PrimaryKeySet, fact
>>> db = Database([fact("R", 1, "a"), fact("R", 2, "b")]).freeze()
>>> keys = PrimaryKeySet.from_dict({"R": [1]})
>>> token = (db.content_digest(), keys.content_digest())
>>> store = SnapshotStore(tempfile.mkdtemp())
>>> store.store(token, db)
True
>>> store.load(token) == db
True
>>> store.load(("0" * 64, keys.content_digest())) is None  # unknown token
True
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..db.database import Database
from ..db.facts import Fact
from .caches import ContentAddressedStore

__all__ = ["SnapshotStore"]

#: The snapshot token entry names are rooted in.
SnapshotToken = Tuple[str, str]


class SnapshotStore(ContentAddressedStore):
    """A store of whole-database entries keyed by snapshot token."""

    _MAGIC = b"RSNP"
    _SUFFIX = ".snp"

    def _validate_payload(self, value: object) -> bool:
        return isinstance(value, tuple) and all(
            isinstance(item, Fact) for item in value
        )

    @classmethod
    def _key_material(cls, *key: object) -> Tuple[str, ...]:
        (snapshot_token,) = key
        database_digest, keys_digest = snapshot_token  # type: ignore[misc]
        return (database_digest, keys_digest)

    def contains(self, snapshot_token: SnapshotToken) -> bool:
        """Whether a snapshot entry is present, without rebuilding it.

        A cheap existence probe (no read, no unpickle, no digest): use it
        to decide whether a checkpoint needs re-storing.  A present entry
        may still fail :meth:`load`'s validation — loads stay the
        authority on soundness; a false positive here only delays the
        re-store until the damaged entry is actually read (and demoted).
        """
        return self._backend.exists(self.entry_name(snapshot_token))

    def load(self, snapshot_token: SnapshotToken) -> Optional[Database]:
        """Rebuild the stored database, or ``None`` on miss/mismatch.

        The rebuilt database is digest-verified against the token before
        it is returned (and frozen — checkpoints are snapshots); an entry
        whose content does not hash to its own key is corruption and is
        deleted best-effort, exactly like an undecodable one.
        """
        name = self.entry_name(snapshot_token)
        facts = self._load_entry(name)
        if facts is None:
            return None
        database = Database(facts)  # type: ignore[arg-type]
        if database.content_digest() != snapshot_token[0]:
            self.corrupt += 1
            self.loads -= 1  # it never really loaded
            self.misses += 1
            self._backend.delete(name)
            return None
        return database.freeze()

    def store(self, snapshot_token: SnapshotToken, database: Database) -> bool:
        """Persist one database's facts atomically; False on I/O failure."""
        return self._store_entry(
            self.entry_name(snapshot_token), tuple(sorted(database.facts()))
        )

    def entry_bytes(self, snapshot_token: SnapshotToken) -> Optional[int]:
        """The stored byte size of one snapshot entry (``None`` if absent).

        Feeds the adaptive checkpoint policy's byte estimates: pricing a
        prospective checkpoint needs to know what comparable snapshots of
        the same name actually cost on disk.
        """
        return self._backend.size(self.entry_name(snapshot_token))

    def discard(self, snapshot_token: SnapshotToken) -> bool:
        """Delete one snapshot entry (checkpoint demotion); True iff removed.

        Dropping an entry can only lengthen future replays, never break
        them: replay falls back to the next closest source exactly as it
        does for an entry lost to GC or corruption.
        """
        return self._backend.delete(self.entry_name(snapshot_token))
