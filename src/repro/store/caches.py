"""The persistent caches: content-addressed, versioned, crash-safe, GC'd.

Two cache layers of the engine are pure functions of content-addressed
inputs, which makes them safe to persist across process restarts:

* the **selector** layer (:class:`SelectorDiskCache`) — the
  :class:`~repro.repairs.counting.PreparedCertificates` of a
  ``(database digest, keys digest, query text, answer)`` key, the most
  expensive per-query state;
* the **decomposition** layer (:class:`DecompositionDiskCache`) — the
  block structure of a ``(database digest, keys digest)`` snapshot, which
  dominates *cold registration* of huge databases.

A pool pointed at the same store answers an unchanged workload after a
restart with **zero** selector *and* decomposition recomputations — and,
with the snapshot catalog alongside (:mod:`repro.store.catalog`), answers
*historical* (``as_of``) queries against any snapshot whose entries are
still stored without recomputing either.

Design notes
------------
* **Backends** — all physical I/O goes through a
  :class:`~repro.store.backend.StoreBackend` (filesystem in production,
  in-memory for tests); the cache classes only ever see named immutable
  blobs.
* **Keying** — the entry name is ``<token prefix>-<content hash><suffix>``:
  a 16-hex prefix identifying the snapshot token, then the SHA-256 of the
  full key material (format version plus the content-addressed inputs).
  Nothing is trusted from the name at load time beyond locating the
  entry; content hashes do the addressing.  The prefix exists so that GC
  can recognise — from names alone — which entries belong to which
  snapshot.
* **Versioning / corruption tolerance / crash safety** — entries use the
  shared framed format of :mod:`repro.store.format`: a version gate (skewed
  entries are misses, never errors), a payload checksum (truncated or
  bit-flipped entries are counted, deleted best-effort and reported as
  misses) and atomic publication (a crash mid-write leaves the old entry
  or none, never a torn one).  A damaged store can make counts *cold*,
  never *wrong*.
* **Garbage collection** — :meth:`collect_garbage` bounds the store by
  entry *age* and entry *count*.  Loading an entry refreshes its recency,
  so count-bounded eviction drops the least-recently-*used* entries.
  Entries of **pinned** snapshot tokens (the live snapshots of a pool's
  registered names — its lineage heads) are never evicted, so GC can never
  force recomputation of active state; eviction only ever removes whole
  entries, so survivors are untouched and an evicted entry is a future
  miss, never an error.
"""

from __future__ import annotations

import hashlib
import pickle
import time
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..db.blocks import Block, BlockDecomposition
from ..db.constraints import PrimaryKeySet
from ..db.database import Database
from ..db.facts import Constant
from ..repairs.counting import PreparedCertificates
from .backend import StoreBackend, as_backend
from .format import FORMAT_VERSION, decode_entry, encode_entry, token_prefix
from .tuning import DecayedCounter

__all__ = [
    "ContentAddressedStore",
    "SelectorDiskCache",
    "DecompositionDiskCache",
    "CalibrationDiskCache",
]

#: The snapshot token entry names are rooted in.
SnapshotToken = Tuple[str, str]

#: With GC bounds configured, re-check them after this many stores so a
#: long-lived process cannot grow the store unboundedly between explicit
#: :meth:`collect_garbage` calls.
_COLLECT_EVERY = 64


def _type_tagged(values: Sequence[Constant]) -> str:
    return "\x1e".join(f"{type(value).__name__}:{value!r}" for value in values)


class ContentAddressedStore:
    """Shared machinery of the persistent caches (see the module docstring).

    Subclasses fix the four-byte ``_MAGIC``, the entry ``_SUFFIX``, the
    key-material hook and the payload validation hook; this base provides
    atomic stores, checksum verification, lifetime counters, token
    pinning and age/count-bounded garbage collection.  Thread-unsafe by
    design (the pool is single-threaded per process); multi-process safe
    in the usual "last atomic write wins" sense, which is correct here
    because every writer computes the same pure function.
    """

    _MAGIC: bytes = b"????"
    _SUFFIX: str = ".bin"

    def __init__(
        self,
        store: Union[str, Path, StoreBackend],
        max_entries: Optional[int] = None,
        max_age_seconds: Optional[float] = None,
        collect_on_init: bool = True,
        clock: Callable[[], float] = time.time,
        hit_half_life: float = 600.0,
    ) -> None:
        self._backend = as_backend(store)
        self._max_entries = max_entries
        self._max_age_seconds = max_age_seconds
        self._stores_since_collect = 0
        self._pinned: Set[str] = set()
        #: The clock every age/recency decision reads — injectable so GC
        #: horizons and decayed hit rates are deterministically testable.
        self._clock = clock
        self._decayed_hits = DecayedCounter(half_life=hit_half_life, clock=clock)
        self.loads = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0
        self.gc_evictions = 0
        # ``collect_on_init=False`` lets owners that pin tokens (the pool)
        # defer the startup collection until the pins are known — an
        # eager collection here would run pin-less and could evict the
        # very entries the owner is about to register as live.
        if collect_on_init and self._bounded:
            self.collect_garbage()

    @property
    def backend(self) -> StoreBackend:
        """The backend holding the entries."""
        return self._backend

    @property
    def directory(self) -> Optional[Path]:
        """The backing directory (``None`` for directory-less backends)."""
        return self._backend.directory

    @property
    def _bounded(self) -> bool:
        return self._max_entries is not None or self._max_age_seconds is not None

    # ------------------------------------------------------------------ #
    # keying (one implementation; subclasses only name their material)
    # ------------------------------------------------------------------ #
    @classmethod
    def _key_material(cls, *key: object) -> Tuple[str, ...]:
        """Subclass hook: the content-addressed material of one key."""
        raise NotImplementedError

    @classmethod
    def entry_name(cls, *key: object) -> str:
        """The entry name of one key: token prefix + content hash + suffix.

        The first key element is always the snapshot token; its prefix
        leads the name so GC pinning can work from names alone.
        """
        material = "\x1f".join((f"v{FORMAT_VERSION}",) + cls._key_material(*key))
        digest = hashlib.sha256(material.encode("utf-8")).hexdigest()
        return f"{token_prefix(key[0])}-{digest}{cls._SUFFIX}"  # type: ignore[arg-type]

    # ------------------------------------------------------------------ #
    # load / store primitives
    # ------------------------------------------------------------------ #
    def _validate_payload(self, value: object) -> bool:
        """Subclass hook: is this unpickled payload of the expected shape?"""
        raise NotImplementedError

    def _load_entry(self, name: str) -> Optional[object]:
        """Return the validated payload stored under ``name``, or ``None``."""
        blob = self._backend.read(name)
        if blob is None:
            self.misses += 1
            return None
        value = self._decode(blob)
        if value is None:
            self.corrupt += 1
            self.misses += 1
            self._backend.delete(name)  # a corrupt entry is dead weight
            return None
        self.loads += 1
        self._decayed_hits.add()
        # Refresh recency (through the injectable clock) so count- and
        # byte-bounded GC evict cold entries first.
        self._backend.set_mtime(name, self._clock())
        return value

    def _store_entry(self, name: str, payload_value: object) -> bool:
        """Atomically persist a payload; returns False on I/O failure.

        Persistence failures are deliberately non-fatal: the cache is an
        accelerator, and a full disk must not fail a counting job.
        """
        try:
            payload = pickle.dumps(payload_value, protocol=pickle.HIGHEST_PROTOCOL)
        except pickle.PicklingError:
            return False
        if not self._backend.write(name, encode_entry(self._MAGIC, payload)):
            return False
        self.stores += 1
        self._stores_since_collect += 1
        if self._bounded and self._stores_since_collect >= _COLLECT_EVERY:
            self.collect_garbage()
        return True

    def _decode(self, blob: bytes) -> Optional[object]:
        """Validate and unpickle an entry; ``None`` for anything unsound."""
        payload = decode_entry(self._MAGIC, blob)
        if payload is None:
            return None
        try:
            value = pickle.loads(payload)
        except Exception:  # noqa: BLE001 - any unpickling failure is corruption
            return None
        if not self._validate_payload(value):
            return None
        return value

    # ------------------------------------------------------------------ #
    # pinning and garbage collection
    # ------------------------------------------------------------------ #
    def set_pinned_tokens(self, tokens: Iterable[SnapshotToken]) -> None:
        """Declare the snapshot tokens whose entries GC must never evict.

        Pools pin the tokens of their registered names (their lineage
        heads) so :meth:`collect_garbage` — explicit, periodic or
        construction-time — can never force recomputation of *active*
        state.  Replaces the previous pin set.
        """
        self._pinned = {token_prefix(token) for token in tokens}

    def pinned_prefixes(self) -> Tuple[str, ...]:
        """The currently pinned entry-name prefixes (sorted, for tests)."""
        return tuple(sorted(self._pinned))

    def _is_pinned(self, name: str) -> bool:
        return any(name.startswith(prefix) for prefix in self._pinned)

    def collect_garbage(
        self,
        max_entries: Optional[int] = None,
        max_age_seconds: Optional[float] = None,
    ) -> int:
        """Evict entries beyond the age/count bounds; return how many.

        ``max_entries`` keeps at most that many entries, evicting the
        least recently used first (recency order; loads refresh recency).
        ``max_age_seconds`` evicts every entry not stored or loaded within
        that window.  Arguments override the bounds configured at
        construction; with neither configured nor passed, nothing is
        evicted.  Entries of pinned tokens (see :meth:`set_pinned_tokens`)
        are exempt from both bounds; eviction removes whole entries only —
        surviving entries are byte-for-byte untouched.
        """
        if max_entries is None:
            max_entries = self._max_entries
        if max_age_seconds is None:
            max_age_seconds = self._max_age_seconds
        self._stores_since_collect = 0
        if max_entries is None and max_age_seconds is None:
            return 0

        entries = sorted(self._backend.entries(self._SUFFIX))  # oldest first
        pinned_count = sum(1 for _, name in entries if self._is_pinned(name))
        candidates = [
            (stamp, name) for stamp, name in entries if not self._is_pinned(name)
        ]

        doomed: List[str] = []
        if max_age_seconds is not None:
            horizon = self._clock() - max_age_seconds
            expired = [entry for entry in candidates if entry[0] < horizon]
            doomed.extend(name for _, name in expired)
            candidates = candidates[len(expired):]
        if max_entries is not None:
            excess = pinned_count + len(candidates) - max_entries
            if excess > 0:
                doomed.extend(name for _, name in candidates[:excess])

        evicted = 0
        for name in doomed:
            if self._backend.delete(name):
                evicted += 1
        self.gc_evictions += evicted
        return evicted

    def collect_bytes(self, max_bytes: int) -> int:
        """Evict least-recently-used entries until at most ``max_bytes`` remain.

        The byte-budget half of garbage collection: entries are dropped
        oldest recency stamp first (loads refresh recency, so survivors
        are the entries actually being hit) until the layer's total byte
        size fits the budget.  Pinned entries are never evicted — and
        still count against the budget, so a budget smaller than the
        pinned footprint simply evicts everything unpinned.  Returns the
        eviction count.
        """
        if max_bytes < 0:
            max_bytes = 0
        entries = sorted(self._backend.entries(self._SUFFIX))  # oldest first
        sizes = {
            name: self._backend.size(name) or 0 for _, name in entries
        }
        total = sum(sizes.values())
        evicted = 0
        for _, name in entries:
            if total <= max_bytes:
                break
            if self._is_pinned(name):
                continue
            if self._backend.delete(name):
                total -= sizes[name]
                evicted += 1
        self.gc_evictions += evicted
        return evicted

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def entry_count(self) -> int:
        """Number of entries currently stored."""
        return len(self._backend.entries(self._SUFFIX))

    def total_bytes(self) -> int:
        """The summed stored byte size of every entry of this kind."""
        return sum(
            self._backend.size(name) or 0
            for _, name in self._backend.entries(self._SUFFIX)
        )

    def decayed_hit_rate(self) -> float:
        """The exponentially decayed hit count (the GC tuner's demand signal)."""
        return self._decayed_hits.value()

    def token_entry_count(self, token: SnapshotToken) -> int:
        """How many stored entries belong to one snapshot token.

        A prefix scan over entry names (every name leads with the token
        prefix, see :meth:`entry_name`); the warm-handoff probe uses it
        to report how much of a migrating snapshot's derived state is
        already on the shared store.
        """
        prefix = f"{token_prefix(token)}-"
        return sum(
            1
            for _, name in self._backend.entries(self._SUFFIX)
            if name.startswith(prefix)
        )

    def stats(self) -> Dict[str, int]:
        """Lifetime counters plus the current entry count.

        ``hits`` counts successful loads (the key existed, decoded and
        validated), ``misses`` everything else, ``corrupt`` the subset of
        misses caused by undecodable entries, ``gc_evictions`` the
        entries removed by :meth:`collect_garbage`/:meth:`collect_bytes`,
        and ``bytes`` the current stored footprint of this entry kind.
        """
        return {
            "entries": self.entry_count(),
            "bytes": self.total_bytes(),
            "hits": self.loads,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
            "gc_evictions": self.gc_evictions,
        }

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self._backend!r}, "
            f"loads={self.loads}, stores={self.stores})"
        )


class SelectorDiskCache(ContentAddressedStore):
    """A store of :class:`PreparedCertificates` entries keyed by content.

    Example — a stored preparation survives a "restart" (a second cache
    instance over the same directory):

    >>> import tempfile
    >>> from repro.db import Database, PrimaryKeySet, fact
    >>> from repro.query import parse_query
    >>> from repro.repairs import prepare_certificates
    >>> db = Database([fact("R", 1, "a"), fact("R", 1, "b")])
    >>> keys = PrimaryKeySet.from_dict({"R": [1]})
    >>> prepared = prepare_certificates(
    ...     db, keys, parse_query("EXISTS x. R(1, x)"), ())
    >>> directory = tempfile.mkdtemp()
    >>> token = (db.content_digest(), keys.content_digest())
    >>> SelectorDiskCache(directory).store(
    ...     token, "EXISTS x. R(1, x)", (), (), prepared)
    True
    >>> restarted = SelectorDiskCache(directory)
    >>> restarted.load(
    ...     token, "EXISTS x. R(1, x)", (), ()).certificate_count
    2
    """

    _MAGIC = b"RSEL"
    _SUFFIX = ".sel"

    def _validate_payload(self, value: object) -> bool:
        return isinstance(value, PreparedCertificates)

    @classmethod
    def _key_material(cls, *key: object) -> Tuple[str, ...]:
        snapshot_token, query, answer_variables, answer = key
        database_digest, keys_digest = snapshot_token  # type: ignore[misc]
        return (
            database_digest,
            keys_digest,
            query,  # type: ignore[return-value]
            ",".join(answer_variables),  # type: ignore[arg-type]
            _type_tagged(answer),  # type: ignore[arg-type]
        )

    def load(
        self,
        snapshot_token: SnapshotToken,
        query: str,
        answer_variables: Sequence[str],
        answer: Sequence[Constant],
    ) -> Optional[PreparedCertificates]:
        """Return the cached preparation, or ``None`` on miss/corruption."""
        value = self._load_entry(
            self.entry_name(snapshot_token, query, answer_variables, answer)
        )
        return value  # type: ignore[return-value]

    def store(
        self,
        snapshot_token: SnapshotToken,
        query: str,
        answer_variables: Sequence[str],
        answer: Sequence[Constant],
        prepared: PreparedCertificates,
    ) -> bool:
        """Persist one preparation atomically; returns False on I/O failure."""
        return self._store_entry(
            self.entry_name(snapshot_token, query, answer_variables, answer),
            prepared,
        )


class DecompositionDiskCache(ContentAddressedStore):
    """A store of block-decomposition entries keyed by snapshot token.

    Only the ordered :class:`~repro.db.blocks.Block` sequence is pickled —
    the database itself is *not* stored.  At load time the caller passes
    the registered (database, keys) pair, and the decomposition is
    rehydrated around it via
    :meth:`~repro.db.blocks.BlockDecomposition.from_blocks`; because the
    entry is addressed by the snapshot token ``(database digest, keys
    digest)``, the stored blocks are the blocks of exactly that pair.

    Example — a decomposition stored once is rebuilt from the store, not
    recomputed:

    >>> import tempfile
    >>> from repro.db import BlockDecomposition, Database, PrimaryKeySet, fact
    >>> db = Database([fact("R", 1, "a"), fact("R", 1, "b"), fact("R", 2, "c")])
    >>> keys = PrimaryKeySet.from_dict({"R": [1]})
    >>> token = (db.content_digest(), keys.content_digest())
    >>> cache = DecompositionDiskCache(tempfile.mkdtemp())
    >>> cache.store(token, BlockDecomposition(db, keys))
    True
    >>> len(cache.load(token, db, keys))
    2
    """

    _MAGIC = b"RDEC"
    _SUFFIX = ".dec"

    def _validate_payload(self, value: object) -> bool:
        return isinstance(value, tuple) and all(
            isinstance(item, Block) for item in value
        )

    @classmethod
    def _key_material(cls, *key: object) -> Tuple[str, ...]:
        (snapshot_token,) = key
        database_digest, keys_digest = snapshot_token  # type: ignore[misc]
        return (database_digest, keys_digest)

    def load(
        self,
        snapshot_token: SnapshotToken,
        database: Database,
        keys: PrimaryKeySet,
    ) -> Optional[BlockDecomposition]:
        """Rehydrate the snapshot's decomposition, or ``None`` on miss."""
        blocks = self._load_entry(self.entry_name(snapshot_token))
        if blocks is None:
            return None
        return BlockDecomposition.from_blocks(
            database, keys, blocks  # type: ignore[arg-type]
        )

    def store(
        self, snapshot_token: SnapshotToken, decomposition: BlockDecomposition
    ) -> bool:
        """Persist one decomposition's blocks; returns False on I/O failure."""
        return self._store_entry(
            self.entry_name(snapshot_token), decomposition.blocks
        )


class CalibrationDiskCache(ContentAddressedStore):
    """A store of conformal-calibration tables keyed by (token, method).

    The payload is the JSON-friendly
    :meth:`~repro.approx.calibration.ConformalCalibrator.to_payload`
    document — a list of held-out (estimate, uncertainty, exact) triples.
    Entries are keyed by the snapshot token and the estimator method
    (``fpras`` / ``karp-luby``) whose residuals they hold: calibration is
    a property of *that estimator on that snapshot's sampling geometry*.
    Because the entry name leads with the token prefix, calibration
    tables of live (registered) snapshots are pinned through the same
    :meth:`set_pinned_tokens` mechanism as every other entry kind — GC
    exempt while referenced.

    Example — a table stored once survives a restart:

    >>> import tempfile
    >>> directory = tempfile.mkdtemp()
    >>> token = ("a" * 64, "b" * 64)
    >>> payload = {"observations": [[10.0, 2.0, 10.4], [7.0, 1.5, 6.6]]}
    >>> CalibrationDiskCache(directory).store(token, "fpras", payload)
    True
    >>> restarted = CalibrationDiskCache(directory)
    >>> len(restarted.load(token, "fpras")["observations"])
    2
    """

    _MAGIC = b"RCAL"
    _SUFFIX = ".cal"

    def _validate_payload(self, value: object) -> bool:
        return isinstance(value, dict) and isinstance(
            value.get("observations"), (list, tuple)
        )

    @classmethod
    def _key_material(cls, *key: object) -> Tuple[str, ...]:
        snapshot_token, method = key
        database_digest, keys_digest = snapshot_token  # type: ignore[misc]
        return (database_digest, keys_digest, str(method))

    def load(
        self, snapshot_token: SnapshotToken, method: str
    ) -> Optional[Dict[str, object]]:
        """Return the cached calibration payload, or ``None`` on miss."""
        value = self._load_entry(self.entry_name(snapshot_token, method))
        return value  # type: ignore[return-value]

    def store(
        self, snapshot_token: SnapshotToken, method: str, payload: Dict[str, object]
    ) -> bool:
        """Persist one calibration table; returns False on I/O failure."""
        return self._store_entry(self.entry_name(snapshot_token, method), payload)
