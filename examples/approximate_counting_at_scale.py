#!/usr/bin/env python3
"""Approximate counting on databases too large for exact enumeration.

Generates a synthetic inconsistent database with thousands of facts (so the
number of repairs is astronomically large), and compares three ways of
counting the repairs that entail a query:

* the certificate-based exact counter (polynomial for bounded keywidth),
* the paper's FPRAS (natural sample space: uniform repairs),
* the Karp–Luby baseline (complex sample space: certificate/world pairs).

The naive enumerator is shown only on a small slice of the data to make its
exponential blow-up concrete.

Run with:  python examples/approximate_counting_at_scale.py
"""

import time

from repro.core import CQASolver
from repro.query import atom, conjunctive_query, var
from repro.workloads import InconsistentDatabaseSpec, random_inconsistent_database


def timed(label: str, function):
    """Run ``function`` and print its wall-clock time alongside the result."""
    start = time.perf_counter()
    value = function()
    elapsed = time.perf_counter() - start
    print(f"  {label:<28} {value!s:<60} [{elapsed * 1000:8.1f} ms]")
    return value


def main() -> None:
    spec = InconsistentDatabaseSpec(
        relations={"Orders": 3, "Customers": 3},
        blocks_per_relation=400,
        conflict_rate=0.35,
        max_block_size=4,
        domain_size=120,
    )
    database, keys = random_inconsistent_database(spec, seed=2019)
    solver = CQASolver(database, keys, rng=2019)

    print(f"Synthetic database: {len(database)} facts, "
          f"{len(solver.decomposition)} blocks, "
          f"{len(solver.decomposition.conflicting_blocks())} conflicting")
    print(f"Total repairs: about 10^{len(str(solver.total_repairs())) - 1}")
    print()

    # A keywidth-2 join query anchored on one shared value: an order and a
    # customer both referencing "v7".  Anchoring keeps the number of
    # certificates (and hence the exact counter's work) manageable while the
    # repair space stays astronomically large.
    o, c = var("o"), var("c")
    query = conjunctive_query(
        [atom("Orders", o, "v7", var("x")), atom("Customers", c, "v7", var("y"))],
        name="order-customer-join-on-v7",
    )
    print(f"Query: {query}")
    print(f"Diagnostics: {solver.diagnostics(query)}")
    print()

    print("Counting repairs that entail the query:")
    exact = timed("exact (certificates)", lambda: solver.count(query))
    timed(
        "fpras (natural space)",
        lambda: solver.count(query, method="fpras", epsilon=0.1, delta=0.05),
    )
    timed(
        "karp-luby (complex space)",
        lambda: solver.count(query, method="karp-luby", epsilon=0.1, delta=0.05),
    )
    print()
    print(f"Exact relative frequency: {float(exact.frequency):.6f}")
    print()

    # The naive enumerator on a small slice, to show why it cannot scale.
    small_spec = InconsistentDatabaseSpec(
        relations={"Orders": 3, "Customers": 3},
        blocks_per_relation=8,
        conflict_rate=0.6,
        max_block_size=3,
        domain_size=10,
    )
    small_database, small_keys = random_inconsistent_database(small_spec, seed=7)
    small_solver = CQASolver(small_database, small_keys, rng=7)
    # On the small slice use the unanchored join so the count is non-trivial.
    small_query = conjunctive_query(
        [atom("Orders", o, var("s"), var("x")), atom("Customers", c, var("s"), var("y"))],
        name="order-customer-join",
    )
    print(f"Small slice: {len(small_database)} facts, "
          f"{small_solver.total_repairs()} repairs")
    print("Counting on the small slice:")
    timed("exact (certificates)", lambda: small_solver.count(small_query))
    timed("naive (enumerate all)", lambda: small_solver.count(small_query, method="naive"))


if __name__ == "__main__":
    main()
