#!/usr/bin/env python3
"""Frequency-ranked analytics over an inconsistent HR database.

This is the use case Section 1.1 of the paper motivates: after integrating
payroll and directory extracts the HR database violates its primary keys,
classical certain answers are almost always empty, and what an analyst
actually wants is the *relative frequency* of each candidate answer over
the repairs.

The example builds the ``hr-analytics`` scenario (a few hundred facts with
~30% conflicting employees), then:

1. ranks the possible departments of employee 1 by frequency,
2. computes how often "some IT employee is in the top salary band" holds,
   exactly and with the FPRAS, and
3. shows how query keywidth drives the FPRAS sample size.

Run with:  python examples/hr_analytics.py
"""

from repro.core import CQASolver
from repro.query import keywidth
from repro.workloads import hr_analytics


def main() -> None:
    scenario = hr_analytics(seed=7, employees=40)
    solver = CQASolver(scenario.database, scenario.keys, rng=42)

    print(scenario)
    print(f"Facts: {len(scenario.database)}; blocks: {len(solver.decomposition)}")
    print(f"Conflicting blocks: {len(solver.decomposition.conflicting_blocks())}")
    print(f"Total repairs: {solver.total_repairs():.3e}" if solver.total_repairs() > 1e6
          else f"Total repairs: {solver.total_repairs()}")
    print()

    # 1. Which department does employee 1 work in, and how often?
    department_query = scenario.queries["department-of-emp1"]
    print(f"Query: {department_query}")
    for entry in solver.answer_ranking(department_query):
        print(f"  {entry}")
    print()

    # 2. Does some IT employee sit in the top salary band?
    top_band = scenario.queries["top-band-in-it"]
    print(f"Query: {top_band} (keywidth {keywidth(top_band, scenario.keys)})")
    exact = solver.count(top_band)
    print(f"  exact:  {exact}")
    estimate = solver.count(top_band, method="fpras", epsilon=0.1, delta=0.05)
    print(f"  fpras:  {estimate}")
    if exact.satisfying:
        error = abs(estimate.satisfying - exact.satisfying) / exact.satisfying
        print(f"  relative error: {error:.3%} (target ε = 10%)")
    print()

    # 3. A keywidth-4 query: are employees 1 and 2 on the same floor?
    same_floor = scenario.queries["same-floor-1-2"]
    print(f"Query: {same_floor} (keywidth {keywidth(same_floor, scenario.keys)})")
    exact = solver.count(same_floor)
    print(f"  exact:  {exact}")
    estimate = solver.count(same_floor, method="fpras", epsilon=0.25, delta=0.1)
    print(f"  fpras:  {estimate}")
    print(f"  fpras samples used: {estimate.details.samples} "
          f"(bound grows as m^k = {estimate.details.max_block_size}^{estimate.details.keywidth})")


if __name__ == "__main__":
    main()
