#!/usr/bin/env python3
"""Quickstart: the paper's Example 1.1, end to end.

Builds the four-fact Employee database, counts its repairs, counts the
repairs entailing the "same department" query exactly and approximately,
and prints the relative frequency the paper computes by hand (1/2).

Run with:  python examples/quickstart.py
"""

from repro import CQASolver, Database, PrimaryKeySet, fact, parse_query


def main() -> None:
    # The inconsistent database of Example 1.1: employee 1's department and
    # employee 2's name are both uncertain.
    database = Database(
        [
            fact("Employee", 1, "Bob", "HR"),
            fact("Employee", 1, "Bob", "IT"),
            fact("Employee", 2, "Alice", "IT"),
            fact("Employee", 2, "Tim", "IT"),
        ]
    )
    keys = PrimaryKeySet.from_dict({"Employee": [1]})
    solver = CQASolver(database, keys, rng=2019)

    print("Database:")
    print(database.pretty())
    print()
    print(f"Consistent w.r.t. the key? {solver.is_consistent()}")
    print(f"Total repairs |rep(D, Σ)| = {solver.total_repairs()}")
    print()

    # The Boolean query of the example: do employees 1 and 2 work in the
    # same department?  (Parsed from the paper-like textual syntax.)
    query = parse_query(
        "EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)",
        name="same-department",
    )
    print(f"Query: {query}")
    print(f"Diagnostics: {solver.diagnostics(query)}")
    print()

    # Exact counting: certificate-based (the default) and naive enumeration.
    exact = solver.count(query)
    naive = solver.count(query, method="naive")
    print(f"Exact (certificates): {exact}")
    print(f"Exact (naive):        {naive}")
    print(f"Relative frequency:   {exact.exact_frequency}  (the paper's 1/2)")
    print()

    # The decision problem (#CQA>0) never needs to look at repairs.
    print(f"Entailed by some repair? {solver.entails_some_repair(query)}")
    print(f"Certain answer (all repairs)? {exact.exact_frequency == 1}")
    print()

    # The FPRAS of Theorem 6.2 / Corollary 6.4, and the Karp-Luby baseline.
    fpras = solver.count(query, method="fpras", epsilon=0.1, delta=0.05)
    karp_luby = solver.count(query, method="karp-luby", epsilon=0.1, delta=0.05)
    print(f"FPRAS estimate:      {fpras}")
    print(f"Karp-Luby estimate:  {karp_luby}")
    print()

    # Non-Boolean queries: rank every candidate answer by frequency.
    details = parse_query("Employee(1, x, y)", answer_variables=["x", "y"])
    print("Answer ranking for Employee(1, x, y):")
    for entry in solver.answer_ranking(details):
        print(f"  {entry}")


if __name__ == "__main__":
    main()
