#!/usr/bin/env python3
"""A tour of the Λ-hierarchy machinery (Sections 4, 5 and 7).

The example walks through the abstractions the paper builds its refined
complexity analysis on, using small concrete instances:

1. a compactor for #CQA (Algorithm 2) and its compact-string outputs,
2. the guess–check–expand transducer (Algorithm 1) and the equality
   ``span = unfold`` that places #CQA in SpanL,
3. the companion Λ[k]-complete problems #DisjPoskDNF and #kForbColoring,
4. the hardness reduction of Theorem 5.1: any compactor-defined function
   rewritten as a #CQA instance over the fixed query Q_k,
5. the FPRAS of Theorem 6.2 applied to all of the above.

Run with:  python examples/lambda_hierarchy_tour.py
"""

from repro.approx import LambdaFPRAS
from repro.lams import CQACompactor, GuessCheckExpandTransducer
from repro.problems import (
    DisjointPositiveDNFCompactor,
    ForbiddenColoringCompactor,
    count_disjoint_positive_dnf,
    count_forbidden_colorings,
)
from repro.reductions import lambda_to_cqa
from repro.repairs import count_repairs_satisfying
from repro.workloads import (
    employee_example,
    random_disjoint_positive_dnf,
    random_forbidden_coloring,
)


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. The #CQA compactor (Algorithm 2) on Example 1.1.
    # ------------------------------------------------------------------ #
    scenario = employee_example()
    query = scenario.queries["same-department"]
    compactor = CQACompactor(query, scenario.keys)
    print(f"#CQA compactor for {query.name!r}: k = kw(Q, Σ) = {compactor.k}")
    for certificate in compactor.certificates(scenario.database):
        print(f"  certificate {certificate}")
        print(f"    compact output: {compactor.output_string(scenario.database, certificate)}")
    print(f"  unfold count (=#CQA): {compactor.count(scenario.database)}")
    print()

    # ------------------------------------------------------------------ #
    # 2. Algorithm 1: the guess–check–expand transducer, span = unfold.
    # ------------------------------------------------------------------ #
    transducer = GuessCheckExpandTransducer(compactor)
    print(f"transducer span (distinct outputs)     : {transducer.span(scenario.database)}")
    print(f"transducer span via the compactor      : {transducer.span_via_compactor(scenario.database)}")
    print(f"decision (#CQA>0, no expansion needed) : {transducer.accepts(scenario.database)}")
    print()

    # ------------------------------------------------------------------ #
    # 3. Companion Λ[k]-complete problems.
    # ------------------------------------------------------------------ #
    dnf = random_disjoint_positive_dnf(parts=6, part_size=3, clauses=8, clause_width=2, seed=5)
    print(f"#DisjPos2DNF instance: {len(dnf.partition)} parts, {len(dnf.clauses)} clauses")
    print(f"  exact count: {count_disjoint_positive_dnf(dnf)} "
          f"(brute force: {dnf.count_bruteforce()})")

    coloring = random_forbidden_coloring(nodes=7, edges=6, uniformity=2, colors=3, seed=6)
    print(f"#2ForbColoring instance: {len(coloring.nodes)} nodes, {len(coloring.edges)} edges")
    print(f"  exact count: {count_forbidden_colorings(coloring)} "
          f"(brute force: {coloring.count_bruteforce()})")
    print()

    # ------------------------------------------------------------------ #
    # 4. Theorem 5.1 hardness: the DNF instance as a #CQA instance over Q_k.
    # ------------------------------------------------------------------ #
    dnf_compactor = DisjointPositiveDNFCompactor(k=dnf.width)
    reduction = lambda_to_cqa(dnf_compactor, dnf)
    report = count_repairs_satisfying(reduction.database, reduction.keys, reduction.query)
    print(f"Theorem 5.1 reduction: fixed query {reduction.query.name} over "
          f"{len(reduction.database)} facts")
    print(f"  unfold_M(x)           = {dnf_compactor.unfold_count(dnf)}")
    print(f"  #CQA(Q_k, Σ_k)(D_x)   = {report.satisfying}")
    print()

    # ------------------------------------------------------------------ #
    # 5. The Theorem 6.2 FPRAS on each compactor-defined function.
    # ------------------------------------------------------------------ #
    for label, target_compactor, instance, exact in (
        ("#CQA (employee)", compactor, scenario.database, compactor.count(scenario.database)),
        ("#DisjPos2DNF", dnf_compactor, dnf, count_disjoint_positive_dnf(dnf)),
        (
            "#2ForbColoring",
            ForbiddenColoringCompactor(k=coloring.uniformity),
            coloring,
            count_forbidden_colorings(coloring),
        ),
    ):
        scheme = LambdaFPRAS(target_compactor)
        result = scheme.estimate(instance, epsilon=0.15, delta=0.1, rng=13)
        error = abs(result.estimate - exact) / exact if exact else 0.0
        print(f"FPRAS on {label:<18}: exact {exact:>6}, estimate {result.estimate:>9.2f}, "
              f"error {error:6.2%}, samples {result.samples}")


if __name__ == "__main__":
    main()
